//! Flat-file record formats of the simulated databases.
//!
//! All sequence databases share a logical entry ([`SeqEntry`]); each
//! [`RecordFormat`] is a concrete textual rendering with a parser. Format
//! transformation modules — the paper's largest shim category — are
//! `parse(from) → render(to)` pipelines over these.
//!
//! KEGG-style databases (pathway, enzyme, compound, glycan, ligand, gene)
//! share [`EntryRecord`] with a single `ENTRY/NAME/DEFINITION` rendering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical content of a sequence-database entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeqEntry {
    /// Primary accession (syntax depends on the owning database).
    pub accession: String,
    /// One-line description.
    pub description: String,
    /// Source organism.
    pub organism: String,
    /// Residues, upper-case, unwrapped.
    pub sequence: String,
}

/// Errors from record parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The text does not look like this format at all.
    WrongFormat { expected: &'static str },
    /// A mandatory field is missing.
    MissingField { field: &'static str },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::WrongFormat { expected } => {
                write!(f, "text is not a {expected} record")
            }
            RecordError::MissingField { field } => {
                write!(f, "record is missing mandatory field {field}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// The concrete sequence-record formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordFormat {
    Fasta,
    Uniprot,
    GenBank,
    Embl,
    Pdb,
}

impl RecordFormat {
    /// All formats, stable order.
    pub const ALL: [RecordFormat; 5] = [
        RecordFormat::Fasta,
        RecordFormat::Uniprot,
        RecordFormat::GenBank,
        RecordFormat::Embl,
        RecordFormat::Pdb,
    ];

    /// Human name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            RecordFormat::Fasta => "FASTA",
            RecordFormat::Uniprot => "Uniprot",
            RecordFormat::GenBank => "GenBank",
            RecordFormat::Embl => "EMBL",
            RecordFormat::Pdb => "PDB",
        }
    }

    /// Renders an entry in this format. `parse` round-trips the result.
    pub fn render(self, e: &SeqEntry) -> String {
        match self {
            RecordFormat::Fasta => {
                format!(
                    ">{} {}\n{}\n",
                    e.accession,
                    e.description,
                    wrap(&e.sequence, 60)
                )
            }
            RecordFormat::Uniprot => format!(
                "ID   {}_ENTRY   Reviewed;   {} AA.\nAC   {};\nDE   {}\nOS   {}.\nSQ   SEQUENCE   {} AA;\n{}\n//\n",
                e.accession,
                e.sequence.len(),
                e.accession,
                e.description,
                e.organism,
                e.sequence.len(),
                indent(&wrap(&e.sequence, 60), "     ")
            ),
            RecordFormat::GenBank => format!(
                "LOCUS       {}   {} bp\nDEFINITION  {}\nACCESSION   {}\nSOURCE      {}\nORIGIN\n{}\n//\n",
                e.accession,
                e.sequence.len(),
                e.description,
                e.accession,
                e.organism,
                indent(&wrap(&e.sequence.to_lowercase(), 60), "        ")
            ),
            RecordFormat::Embl => format!(
                "ID   {}; SV 1; linear; {} BP.\nAC   {};\nDE   {}\nOS   {}\nSQ   Sequence {} BP;\n{}\n//\n",
                e.accession,
                e.sequence.len(),
                e.accession,
                e.description,
                e.organism,
                e.sequence.len(),
                indent(&wrap(&e.sequence.to_lowercase(), 60), "     ")
            ),
            RecordFormat::Pdb => format!(
                "HEADER    MOLECULE                                {}\nTITLE     {}\nSOURCE    {}\nSEQRES    {}\nEND\n",
                e.accession, e.description, e.organism, e.sequence
            ),
        }
    }

    /// Parses a record of this format back into a [`SeqEntry`].
    pub fn parse(self, text: &str) -> Result<SeqEntry, RecordError> {
        match self {
            RecordFormat::Fasta => parse_fasta(text),
            RecordFormat::Uniprot => parse_tagged(
                text,
                "Uniprot",
                "AC   ",
                "DE   ",
                "OS   ",
                "SQ   ",
                |line| line.starts_with("ID   "),
                true,
            ),
            RecordFormat::GenBank => parse_genbank(text),
            RecordFormat::Embl => parse_tagged(
                text,
                "EMBL",
                "AC   ",
                "DE   ",
                "OS   ",
                "SQ   ",
                |line| line.starts_with("ID   ") && line.contains("SV "),
                true,
            ),
            RecordFormat::Pdb => parse_pdb(text),
        }
    }

    /// Detects the format of a record, or `None` if it parses as none.
    pub fn detect(text: &str) -> Option<RecordFormat> {
        // Uniprot and EMBL both use ID/AC tags; try EMBL first since its ID
        // line is more specific ("SV").
        [
            RecordFormat::Fasta,
            RecordFormat::Embl,
            RecordFormat::Uniprot,
            RecordFormat::GenBank,
            RecordFormat::Pdb,
        ]
        .into_iter()
        .find(|&format| format.parse(text).is_ok())
    }
}

fn parse_fasta(text: &str) -> Result<SeqEntry, RecordError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or(RecordError::WrongFormat { expected: "FASTA" })?;
    let header = header
        .strip_prefix('>')
        .ok_or(RecordError::WrongFormat { expected: "FASTA" })?;
    let (accession, description) = match header.split_once(' ') {
        Some((a, d)) => (a.to_string(), d.trim().to_string()),
        None => (header.to_string(), String::new()),
    };
    if accession.is_empty() {
        return Err(RecordError::MissingField { field: "accession" });
    }
    let sequence: String = lines.flat_map(|l| l.trim().chars()).collect();
    if sequence.is_empty() {
        return Err(RecordError::MissingField { field: "sequence" });
    }
    Ok(SeqEntry {
        accession,
        description,
        organism: String::new(),
        sequence,
    })
}

#[allow(clippy::too_many_arguments)]
fn parse_tagged(
    text: &str,
    expected: &'static str,
    ac: &str,
    de: &str,
    os: &str,
    sq: &str,
    id_line: impl Fn(&str) -> bool,
    uppercase_seq: bool,
) -> Result<SeqEntry, RecordError> {
    let first = text.lines().next().unwrap_or("");
    if !id_line(first) {
        return Err(RecordError::WrongFormat { expected });
    }
    let mut accession = None;
    let mut description = None;
    let mut organism = None;
    let mut sequence = String::new();
    let mut in_seq = false;
    for line in text.lines() {
        if line.starts_with("//") {
            break;
        }
        if in_seq {
            sequence.extend(line.chars().filter(|c| c.is_ascii_alphabetic()));
            continue;
        }
        if let Some(rest) = line.strip_prefix(ac) {
            accession = Some(rest.trim_end_matches(';').trim().to_string());
        } else if let Some(rest) = line.strip_prefix(de) {
            description = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix(os) {
            organism = Some(rest.trim_end_matches('.').trim().to_string());
        } else if line.starts_with(sq) {
            in_seq = true;
        }
    }
    let sequence = if uppercase_seq {
        sequence.to_uppercase()
    } else {
        sequence
    };
    Ok(SeqEntry {
        accession: accession.ok_or(RecordError::MissingField { field: "AC" })?,
        description: description.ok_or(RecordError::MissingField { field: "DE" })?,
        organism: organism.ok_or(RecordError::MissingField { field: "OS" })?,
        sequence: if sequence.is_empty() {
            return Err(RecordError::MissingField { field: "SQ" });
        } else {
            sequence
        },
    })
}

fn parse_genbank(text: &str) -> Result<SeqEntry, RecordError> {
    if !text.starts_with("LOCUS") {
        return Err(RecordError::WrongFormat {
            expected: "GenBank",
        });
    }
    let mut accession = None;
    let mut description = None;
    let mut organism = None;
    let mut sequence = String::new();
    let mut in_seq = false;
    for line in text.lines() {
        if line.starts_with("//") {
            break;
        }
        if in_seq {
            sequence.extend(line.chars().filter(|c| c.is_ascii_alphabetic()));
            continue;
        }
        if let Some(rest) = line.strip_prefix("ACCESSION   ") {
            accession = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("DEFINITION  ") {
            description = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("SOURCE      ") {
            organism = Some(rest.trim().to_string());
        } else if line.starts_with("ORIGIN") {
            in_seq = true;
        }
    }
    Ok(SeqEntry {
        accession: accession.ok_or(RecordError::MissingField { field: "ACCESSION" })?,
        description: description.ok_or(RecordError::MissingField {
            field: "DEFINITION",
        })?,
        organism: organism.ok_or(RecordError::MissingField { field: "SOURCE" })?,
        sequence: if sequence.is_empty() {
            return Err(RecordError::MissingField { field: "ORIGIN" });
        } else {
            sequence.to_uppercase()
        },
    })
}

fn parse_pdb(text: &str) -> Result<SeqEntry, RecordError> {
    if !text.starts_with("HEADER") {
        return Err(RecordError::WrongFormat { expected: "PDB" });
    }
    let mut accession = None;
    let mut description = None;
    let mut organism = None;
    let mut sequence = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("HEADER") {
            accession = rest.split_whitespace().last().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("TITLE     ") {
            description = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("SOURCE    ") {
            organism = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("SEQRES    ") {
            sequence = Some(rest.trim().to_string());
        }
    }
    Ok(SeqEntry {
        accession: accession
            .filter(|a| !a.is_empty())
            .ok_or(RecordError::MissingField { field: "HEADER" })?,
        description: description.ok_or(RecordError::MissingField { field: "TITLE" })?,
        organism: organism.ok_or(RecordError::MissingField { field: "SOURCE" })?,
        sequence: sequence.ok_or(RecordError::MissingField { field: "SEQRES" })?,
    })
}

/// Logical content of a KEGG-style (non-sequence) database entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntryRecord {
    /// Accession of this entry.
    pub accession: String,
    /// Entry kind label, e.g. `Pathway`, `Enzyme`, `Glycan`.
    pub kind: String,
    /// Short name.
    pub name: String,
    /// One-line definition.
    pub definition: String,
    /// Cross-references to other accessions.
    pub links: Vec<String>,
}

impl EntryRecord {
    /// Renders the KEGG-style flat text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ENTRY       {}            {}\nNAME        {}\nDEFINITION  {}\n",
            self.accession, self.kind, self.name, self.definition
        );
        if !self.links.is_empty() {
            out.push_str("DBLINKS     ");
            out.push_str(&self.links.join(" "));
            out.push('\n');
        }
        out.push_str("///\n");
        out
    }

    /// Parses the KEGG-style flat text.
    pub fn parse(text: &str) -> Result<EntryRecord, RecordError> {
        if !text.starts_with("ENTRY") {
            return Err(RecordError::WrongFormat {
                expected: "KEGG entry",
            });
        }
        let mut accession = None;
        let mut kind = String::new();
        let mut name = None;
        let mut definition = None;
        let mut links = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("ENTRY       ") {
                let mut parts = rest.split_whitespace();
                accession = parts.next().map(str::to_string);
                kind = parts.collect::<Vec<_>>().join(" ");
            } else if let Some(rest) = line.strip_prefix("NAME        ") {
                name = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("DEFINITION  ") {
                definition = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("DBLINKS     ") {
                links = rest.split_whitespace().map(str::to_string).collect();
            }
        }
        Ok(EntryRecord {
            accession: accession.ok_or(RecordError::MissingField { field: "ENTRY" })?,
            kind,
            name: name.ok_or(RecordError::MissingField { field: "NAME" })?,
            definition: definition.ok_or(RecordError::MissingField {
                field: "DEFINITION",
            })?,
            links,
        })
    }
}

/// Wraps text at `width` characters per line (character-aware, so non-ASCII
/// residues never split mid-character).
pub fn wrap(s: &str, width: usize) -> String {
    assert!(width > 0);
    let chars: Vec<char> = s.chars().collect();
    chars
        .chunks(width)
        .map(|chunk| chunk.iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn indent(s: &str, prefix: &str) -> String {
    s.lines()
        .map(|l| format!("{prefix}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> SeqEntry {
        SeqEntry {
            accession: "P12345".into(),
            description: "putative kinase".into(),
            organism: "Homo sapiens".into(),
            sequence: "MKVLATGCDEFHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYMKVLATGCDEFHIKLMNPQ".into(),
        }
    }

    #[test]
    fn every_format_round_trips_core_fields() {
        let e = entry();
        for format in RecordFormat::ALL {
            let text = format.render(&e);
            let back = format
                .parse(&text)
                .unwrap_or_else(|err| panic!("{}: {err}\n{text}", format.name()));
            assert_eq!(back.accession, e.accession, "{}", format.name());
            assert_eq!(back.sequence, e.sequence, "{}", format.name());
            assert_eq!(back.description, e.description, "{}", format.name());
            // FASTA has no organism field.
            if format != RecordFormat::Fasta {
                assert_eq!(back.organism, e.organism, "{}", format.name());
            }
        }
    }

    #[test]
    fn detect_identifies_each_rendering() {
        let e = entry();
        for format in RecordFormat::ALL {
            let text = format.render(&e);
            assert_eq!(RecordFormat::detect(&text), Some(format), "\n{text}");
        }
        assert_eq!(RecordFormat::detect("not a record"), None);
    }

    #[test]
    fn fasta_header_without_description() {
        let parsed = RecordFormat::Fasta.parse(">P12345\nMKVLAT\n").unwrap();
        assert_eq!(parsed.accession, "P12345");
        assert_eq!(parsed.description, "");
    }

    #[test]
    fn fasta_rejects_empty_sequence() {
        assert_eq!(
            RecordFormat::Fasta.parse(">P12345 desc\n"),
            Err(RecordError::MissingField { field: "sequence" })
        );
    }

    #[test]
    fn uniprot_rejects_embl_and_vice_versa() {
        let e = entry();
        let uni = RecordFormat::Uniprot.render(&e);
        let embl = RecordFormat::Embl.render(&e);
        assert!(RecordFormat::Embl.parse(&uni).is_err());
        // EMBL records carry an "SV" marker Uniprot's ID line lacks; Uniprot's
        // parser is laxer, so only assert the strict direction.
        assert!(RecordFormat::Embl.parse(&embl).is_ok());
    }

    #[test]
    fn genbank_lowercases_then_restores_sequence() {
        let e = entry();
        let text = RecordFormat::GenBank.render(&e);
        assert!(text.contains("mkvlat"), "sequence should be lowercased");
        assert_eq!(
            RecordFormat::GenBank.parse(&text).unwrap().sequence,
            e.sequence
        );
    }

    #[test]
    fn kegg_entry_round_trips() {
        let rec = EntryRecord {
            accession: "path:map00010".into(),
            kind: "Pathway".into(),
            name: "Glycolysis".into(),
            definition: "Glycolysis / Gluconeogenesis".into(),
            links: vec!["ec:1.1.1.1".into(), "cpd:C00022".into()],
        };
        let text = rec.render();
        assert_eq!(EntryRecord::parse(&text).unwrap(), rec);
    }

    #[test]
    fn kegg_entry_without_links_round_trips() {
        let rec = EntryRecord {
            accession: "G00001".into(),
            kind: "Glycan".into(),
            name: "N-glycan".into(),
            definition: "a glycan".into(),
            links: vec![],
        };
        assert_eq!(EntryRecord::parse(&rec.render()).unwrap(), rec);
    }

    #[test]
    fn wrap_respects_width() {
        let w = wrap(&"A".repeat(125), 60);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() <= 60));
        assert_eq!(lines[2].len(), 5);
    }
}
