//! Biological sequence alphabets, generation and classification.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// DNA alphabet.
pub const DNA_ALPHABET: &[u8] = b"ACGT";
/// RNA alphabet.
pub const RNA_ALPHABET: &[u8] = b"ACGU";
/// The twenty proteinogenic amino acids.
pub const PROTEIN_ALPHABET: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
/// IUPAC nucleotide ambiguity codes (excluding the concrete ACGT/U).
pub const AMBIGUITY_CODES: &[u8] = b"NRYSWKM";

/// The kind of a biological sequence, as recoverable from its residues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SequenceKind {
    Dna,
    Rna,
    Protein,
    /// A nucleotide-ish sequence containing IUPAC ambiguity codes — an
    /// instance of `BiologicalSequence` that realizes no leaf concept.
    Generic,
}

impl SequenceKind {
    /// Generates a sequence of `len` residues.
    ///
    /// `Generic` sequences mix DNA residues with ambiguity codes so that they
    /// are *not* classifiable as plain DNA/RNA/protein: they realize the
    /// `BiologicalSequence` concept itself.
    pub fn generate<R: Rng + ?Sized>(self, rng: &mut R, len: usize) -> String {
        assert!(len > 0, "sequences must be non-empty");
        match self {
            SequenceKind::Dna => random_from(rng, DNA_ALPHABET, len),
            SequenceKind::Rna => random_from(rng, RNA_ALPHABET, len),
            SequenceKind::Protein => {
                // Ensure at least one residue outside the nucleotide alphabet
                // so the classifier can never mistake it for DNA/RNA.
                let mut s = random_from(rng, PROTEIN_ALPHABET, len);
                if classify(&s) != Some(SequenceKind::Protein) {
                    let pos = rng.gen_range(0..len);
                    // Amino acids that are neither nucleotides nor IUPAC
                    // ambiguity codes, so the classifier cannot confuse the
                    // result with a nucleotide-ish sequence.
                    let replacement = *b"DEFHILPQV"
                        .get(rng.gen_range(0..9))
                        .expect("non-empty set");
                    // Safety of byte replacement: the alphabet is ASCII.
                    unsafe { s.as_bytes_mut()[pos] = replacement };
                }
                s
            }
            SequenceKind::Generic => {
                let mut s = random_from(rng, DNA_ALPHABET, len);
                // Sprinkle ambiguity codes over ~10% of positions (at least one).
                let n = (len / 10).max(1);
                for _ in 0..n {
                    let pos = rng.gen_range(0..len);
                    let code = AMBIGUITY_CODES[rng.gen_range(0..AMBIGUITY_CODES.len())];
                    unsafe { s.as_bytes_mut()[pos] = code };
                }
                s
            }
        }
    }
}

/// Classifies residues into the most specific [`SequenceKind`], or `None` if
/// the text is not a biological sequence at all.
///
/// Priority: a sequence over `{A,C,G,T}` is DNA; over `{A,C,G,U}` RNA; over
/// the amino-acid alphabet protein; nucleotide + ambiguity codes is
/// `Generic`. Empty or foreign-character strings are rejected.
pub fn classify(seq: &str) -> Option<SequenceKind> {
    if seq.is_empty() {
        return None;
    }
    let bytes = seq.as_bytes();
    let all_in = |set: &[u8]| bytes.iter().all(|b| set.contains(b));
    if all_in(DNA_ALPHABET) {
        Some(SequenceKind::Dna)
    } else if all_in(RNA_ALPHABET) {
        Some(SequenceKind::Rna)
    } else if bytes.iter().all(|b| {
        DNA_ALPHABET.contains(b) || RNA_ALPHABET.contains(b) || AMBIGUITY_CODES.contains(b)
    }) {
        // Nucleotide residues plus IUPAC ambiguity codes. Checked *before*
        // protein because every ambiguity code doubles as an amino-acid
        // letter; the protein generator guarantees at least one residue
        // outside this union, so real proteins never land here.
        Some(SequenceKind::Generic)
    } else if all_in(PROTEIN_ALPHABET) {
        Some(SequenceKind::Protein)
    } else {
        None
    }
}

/// Reverse-complements a DNA sequence. Non-ACGT characters map to `N`.
pub fn reverse_complement(dna: &str) -> String {
    dna.bytes()
        .rev()
        .map(|b| match b {
            b'A' => 'T',
            b'T' => 'A',
            b'C' => 'G',
            b'G' => 'C',
            _ => 'N',
        })
        .collect()
}

/// Transcribes DNA to RNA (T → U).
pub fn transcribe(dna: &str) -> String {
    dna.replace('T', "U")
}

/// Fraction of G/C residues, `0.0` for an empty sequence.
pub fn gc_content(seq: &str) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let gc = seq.bytes().filter(|&b| b == b'G' || b == b'C').count();
    gc as f64 / seq.len() as f64
}

/// Translates DNA to protein with a fixed, simplified codon table
/// (deterministic, reading frame 0, stops dropped).
pub fn translate(dna: &str) -> String {
    dna.as_bytes()
        .chunks_exact(3)
        .filter_map(codon_to_aa)
        .collect()
}

fn codon_to_aa(codon: &[u8]) -> Option<char> {
    // A compact, deterministic mapping: hash the codon into the amino-acid
    // alphabet. Not the real genetic code, but total, fixed, and sufficient
    // for black-box behavior characterization.
    let idx = codon
        .iter()
        .fold(0usize, |acc, &b| acc * 5 + (b % 5) as usize);
    let table = PROTEIN_ALPHABET;
    match idx % 21 {
        20 => None, // simulated stop codon
        i => Some(table[i] as char),
    }
}

fn random_from<R: Rng + ?Sized>(rng: &mut R, alphabet: &[u8], len: usize) -> String {
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_sequences_classify_as_their_kind() {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [
            SequenceKind::Dna,
            SequenceKind::Rna,
            SequenceKind::Protein,
            SequenceKind::Generic,
        ] {
            for len in [1usize, 5, 60, 300] {
                let s = kind.generate(&mut rng, len);
                assert_eq!(s.len(), len);
                let got = classify(&s).unwrap_or_else(|| panic!("unclassifiable {s}"));
                // DNA/RNA can collide on tiny alphabet subsets (e.g. "ACCA"
                // is valid for both and classified DNA-first); protein can
                // only be ambiguous at very short lengths which generate()
                // patches, so demand exactness except RNA→DNA at A/C/G-only.
                match kind {
                    SequenceKind::Rna => {
                        assert!(matches!(got, SequenceKind::Rna | SequenceKind::Dna))
                    }
                    other => assert_eq!(got, other, "sequence {s}"),
                }
            }
        }
    }

    #[test]
    fn classify_rejects_non_sequences() {
        assert_eq!(classify(""), None);
        assert_eq!(classify("hello world"), None);
        assert_eq!(classify("ACGT-1"), None);
    }

    #[test]
    fn classify_known_strings() {
        assert_eq!(classify("ACGTACGT"), Some(SequenceKind::Dna));
        assert_eq!(classify("ACGUACGU"), Some(SequenceKind::Rna));
        assert_eq!(classify("MKVLAT"), Some(SequenceKind::Protein));
        // All-letters-shared-with-ambiguity-codes strings are Generic by the
        // documented precedence.
        assert_eq!(classify("NKWS"), Some(SequenceKind::Generic));
        assert_eq!(classify("ACGTN"), Some(SequenceKind::Generic));
    }

    #[test]
    fn reverse_complement_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = SequenceKind::Dna.generate(&mut rng, 50);
            assert_eq!(reverse_complement(&reverse_complement(&s)), s);
        }
    }

    #[test]
    fn transcription_produces_rna() {
        let rna = transcribe("ACGTTT");
        assert_eq!(rna, "ACGUUU");
        assert_eq!(classify(&rna), Some(SequenceKind::Rna));
    }

    #[test]
    fn gc_content_bounds() {
        assert_eq!(gc_content(""), 0.0);
        assert_eq!(gc_content("GGCC"), 1.0);
        assert_eq!(gc_content("AATT"), 0.0);
        assert!((gc_content("ACGT") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn translate_is_deterministic_and_shrinks_by_three() {
        let p1 = translate("ACGTGACGTACG");
        let p2 = translate("ACGTGACGTACG");
        assert_eq!(p1, p2);
        assert!(p1.len() <= 4);
        assert!(p1.bytes().all(|b| PROTEIN_ALPHABET.contains(&b)));
    }
}
