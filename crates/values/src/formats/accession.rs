//! Accession (identifier) formats of the simulated databases.
//!
//! Each accession kind has a recognizable syntax, a deterministic generator,
//! and a validator. Mapping modules translate between kinds; retrieval
//! modules resolve an accession to a record in a simulated database; the
//! matcher relies on accessions comparing exactly.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The identifier syntaxes used across the synthetic universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessionKind {
    /// Uniprot protein accession: `[OPQ][0-9][A-Z0-9]{3}[0-9]`, e.g. `P12345`.
    Uniprot,
    /// PDB structure id: digit + three alphanumerics, e.g. `1ABC`.
    Pdb,
    /// EMBL nucleotide accession: two letters + six digits, e.g. `AB123456`.
    Embl,
    /// GenBank accession: one letter + five digits, e.g. `U12345`.
    GenBank,
    /// KEGG gene id: `hsa:` + digits, e.g. `hsa:10458`.
    KeggGene,
    /// KEGG pathway id: `path:map` + five digits, e.g. `path:map00010`.
    KeggPathway,
    /// KEGG compound id: `cpd:C` + five digits, e.g. `cpd:C00022`.
    KeggCompound,
    /// KEGG enzyme id (EC-number based): `ec:` + four dotted fields.
    KeggEnzyme,
    /// KEGG glycan accession: `gl:G` + five digits, e.g. `gl:G00001`.
    Glycan,
    /// Ligand database accession: `L` + six digits, e.g. `L000123`.
    Ligand,
    /// Gene Ontology term: `GO:` + seven digits, e.g. `GO:0008150`.
    GoTerm,
    /// Enzyme commission number: four dotted integers, e.g. `1.1.1.1`.
    EcNumber,
    /// NCBI Entrez gene id: plain digits.
    Entrez,
    /// Ensembl gene id: `ENSG` + eleven digits.
    Ensembl,
    /// HGNC-style gene symbol: 2–4 upper-case letters followed by 1–2
    /// digits (like `BRCA2`, `TP53`) — the digits keep symbols syntactically
    /// distinct from short residue sequences.
    GeneSymbol,
}

impl AccessionKind {
    /// All kinds, in a stable order.
    pub const ALL: [AccessionKind; 15] = [
        AccessionKind::Uniprot,
        AccessionKind::Pdb,
        AccessionKind::Embl,
        AccessionKind::GenBank,
        AccessionKind::KeggGene,
        AccessionKind::KeggPathway,
        AccessionKind::KeggCompound,
        AccessionKind::KeggEnzyme,
        AccessionKind::Glycan,
        AccessionKind::Ligand,
        AccessionKind::GoTerm,
        AccessionKind::EcNumber,
        AccessionKind::Entrez,
        AccessionKind::Ensembl,
        AccessionKind::GeneSymbol,
    ];

    /// Generates a syntactically valid accession of this kind.
    pub fn generate<R: Rng + ?Sized>(self, rng: &mut R) -> String {
        match self {
            AccessionKind::Uniprot => {
                let lead = *pick(rng, b"OPQ") as char;
                let mut s = String::new();
                s.push(lead);
                s.push(digit(rng));
                for _ in 0..3 {
                    s.push(*pick(rng, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") as char);
                }
                s.push(digit(rng));
                s
            }
            AccessionKind::Pdb => {
                let mut s = String::new();
                s.push(char::from(b'1' + rng.gen_range(0..9u8)));
                for _ in 0..3 {
                    s.push(*pick(rng, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") as char);
                }
                s
            }
            AccessionKind::Embl => format!(
                "{}{}{:06}",
                upper(rng),
                upper(rng),
                rng.gen_range(0..1_000_000u32)
            ),
            AccessionKind::GenBank => format!("{}{:05}", upper(rng), rng.gen_range(0..100_000u32)),
            AccessionKind::KeggGene => format!("hsa:{}", rng.gen_range(100..99_999u32)),
            AccessionKind::KeggPathway => {
                format!("path:map{:05}", rng.gen_range(10..1_200u32) * 10)
            }
            AccessionKind::KeggCompound => format!("cpd:C{:05}", rng.gen_range(1..99_999u32)),
            AccessionKind::KeggEnzyme => format!(
                "ec:{}.{}.{}.{}",
                rng.gen_range(1..7u8),
                rng.gen_range(1..20u8),
                rng.gen_range(1..20u8),
                rng.gen_range(1..200u8)
            ),
            AccessionKind::Glycan => format!("gl:G{:05}", rng.gen_range(1..99_999u32)),
            AccessionKind::Ligand => format!("L{:06}", rng.gen_range(1..999_999u32)),
            AccessionKind::GoTerm => format!("GO:{:07}", rng.gen_range(1..9_999_999u32)),
            AccessionKind::EcNumber => format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..7u8),
                rng.gen_range(1..20u8),
                rng.gen_range(1..20u8),
                rng.gen_range(1..200u8)
            ),
            AccessionKind::Entrez => format!("{}", rng.gen_range(1_000..999_999u32)),
            AccessionKind::Ensembl => format!("ENSG{:011}", rng.gen_range(1..99_999_999u64)),
            AccessionKind::GeneSymbol => {
                let letters = rng.gen_range(2..=4usize);
                let mut s: String = (0..letters).map(|_| upper(rng)).collect();
                let digits = rng.gen_range(1..=2usize);
                for _ in 0..digits {
                    s.push(digit(rng));
                }
                s
            }
        }
    }

    /// Whether `s` is a syntactically valid accession of this kind.
    pub fn is_valid(self, s: &str) -> bool {
        match self {
            AccessionKind::Uniprot => {
                let b = s.as_bytes();
                b.len() == 6
                    && matches!(b[0], b'O' | b'P' | b'Q')
                    && b[1].is_ascii_digit()
                    && b[2..5]
                        .iter()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
                    && b[5].is_ascii_digit()
            }
            AccessionKind::Pdb => {
                let b = s.as_bytes();
                b.len() == 4
                    && (b'1'..=b'9').contains(&b[0])
                    && b[1..]
                        .iter()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
            }
            AccessionKind::Embl => {
                let b = s.as_bytes();
                b.len() == 8
                    && b[..2].iter().all(u8::is_ascii_uppercase)
                    && b[2..].iter().all(u8::is_ascii_digit)
            }
            AccessionKind::GenBank => {
                let b = s.as_bytes();
                b.len() == 6 && b[0].is_ascii_uppercase() && b[1..].iter().all(u8::is_ascii_digit)
            }
            AccessionKind::KeggGene => prefixed_digits(s, "hsa:"),
            AccessionKind::KeggPathway => prefixed_digits(s, "path:map"),
            AccessionKind::KeggCompound => prefixed_digits(s, "cpd:C"),
            AccessionKind::KeggEnzyme => s
                .strip_prefix("ec:")
                .is_some_and(|rest| AccessionKind::EcNumber.is_valid(rest)),
            AccessionKind::Glycan => prefixed_digits(s, "gl:G") && s.len() == 9,
            AccessionKind::Ligand => prefixed_digits(s, "L") && s.len() == 7,
            AccessionKind::GoTerm => prefixed_digits(s, "GO:") && s.len() == 10,
            AccessionKind::EcNumber => {
                let parts: Vec<&str> = s.split('.').collect();
                parts.len() == 4
                    && parts
                        .iter()
                        .all(|p| !p.is_empty() && p.bytes().all(|c| c.is_ascii_digit()))
            }
            AccessionKind::Entrez => {
                !s.is_empty() && s.len() <= 9 && s.bytes().all(|c| c.is_ascii_digit())
            }
            AccessionKind::Ensembl => {
                s.len() == 15 && s.starts_with("ENSG") && s[4..].bytes().all(|c| c.is_ascii_digit())
            }
            AccessionKind::GeneSymbol => {
                let b = s.as_bytes();
                let letters = b.iter().take_while(|c| c.is_ascii_uppercase()).count();
                let digits = b.len() - letters;
                (2..=4).contains(&letters)
                    && (1..=2).contains(&digits)
                    && b[letters..].iter().all(u8::is_ascii_digit)
                    // Disambiguate from kinds that are also upper + digits.
                    && !AccessionKind::Uniprot.is_valid(s)
                    && !AccessionKind::GenBank.is_valid(s)
            }
        }
    }

    /// Detects the kind of an accession string, trying kinds in a fixed
    /// priority order (more specific syntaxes first).
    pub fn detect(s: &str) -> Option<AccessionKind> {
        AccessionKind::ALL.into_iter().find(|kind| kind.is_valid(s))
    }
}

impl fmt::Display for AccessionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessionKind::Uniprot => "uniprot",
            AccessionKind::Pdb => "pdb",
            AccessionKind::Embl => "embl",
            AccessionKind::GenBank => "genbank",
            AccessionKind::KeggGene => "kegg-gene",
            AccessionKind::KeggPathway => "kegg-pathway",
            AccessionKind::KeggCompound => "kegg-compound",
            AccessionKind::KeggEnzyme => "kegg-enzyme",
            AccessionKind::Glycan => "glycan",
            AccessionKind::Ligand => "ligand",
            AccessionKind::GoTerm => "go-term",
            AccessionKind::EcNumber => "ec-number",
            AccessionKind::Entrez => "entrez",
            AccessionKind::Ensembl => "ensembl",
            AccessionKind::GeneSymbol => "gene-symbol",
        };
        f.write_str(name)
    }
}

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, set: &'a [u8]) -> &'a u8 {
    &set[rng.gen_range(0..set.len())]
}

fn digit<R: Rng + ?Sized>(rng: &mut R) -> char {
    char::from(b'0' + rng.gen_range(0..10u8))
}

fn upper<R: Rng + ?Sized>(rng: &mut R) -> char {
    char::from(b'A' + rng.gen_range(0..26u8))
}

fn prefixed_digits(s: &str, prefix: &str) -> bool {
    s.strip_prefix(prefix)
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|c| c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_accessions_validate() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in AccessionKind::ALL {
            for _ in 0..200 {
                let acc = kind.generate(&mut rng);
                assert!(kind.is_valid(&acc), "{kind} rejected its own {acc}");
            }
        }
    }

    #[test]
    fn known_examples_validate() {
        assert!(AccessionKind::Uniprot.is_valid("P12345"));
        assert!(AccessionKind::Pdb.is_valid("1ABC"));
        assert!(AccessionKind::GoTerm.is_valid("GO:0008150"));
        assert!(AccessionKind::EcNumber.is_valid("1.1.1.1"));
        assert!(AccessionKind::KeggGene.is_valid("hsa:10458"));
        assert!(AccessionKind::KeggPathway.is_valid("path:map00010"));
        assert!(AccessionKind::Ensembl.is_valid("ENSG00000139618"));
    }

    #[test]
    fn invalid_examples_rejected() {
        assert!(!AccessionKind::Uniprot.is_valid("X12345"));
        assert!(!AccessionKind::Uniprot.is_valid("P1234"));
        assert!(!AccessionKind::GoTerm.is_valid("GO:123"));
        assert!(!AccessionKind::EcNumber.is_valid("1.1.1"));
        assert!(!AccessionKind::EcNumber.is_valid("1.1.1.x"));
        assert!(!AccessionKind::Entrez.is_valid(""));
        assert!(!AccessionKind::KeggGene.is_valid("hsa:"));
    }

    #[test]
    fn detect_finds_generated_kind_or_compatible_one() {
        // Some syntaxes overlap (e.g. a GenBank id is upper+digits like a
        // symbol); detection must at least return a kind that validates.
        let mut rng = StdRng::seed_from_u64(11);
        for kind in AccessionKind::ALL {
            for _ in 0..50 {
                let acc = kind.generate(&mut rng);
                let detected = AccessionKind::detect(&acc)
                    .unwrap_or_else(|| panic!("no kind detected for {acc}"));
                assert!(detected.is_valid(&acc));
            }
        }
    }

    #[test]
    fn uniprot_detection_is_exact() {
        assert_eq!(
            AccessionKind::detect("P12345"),
            Some(AccessionKind::Uniprot)
        );
        assert_eq!(
            AccessionKind::detect("GO:0008150"),
            Some(AccessionKind::GoTerm)
        );
    }

    #[test]
    fn gene_symbol_excludes_other_syntaxes() {
        assert!(!AccessionKind::GeneSymbol.is_valid("1ABC")); // PDB-shaped
        assert!(AccessionKind::GeneSymbol.is_valid("BRCA2"));
        assert!(AccessionKind::GeneSymbol.is_valid("TP53"));
        assert!(!AccessionKind::GeneSymbol.is_valid("ACGT")); // bare letters
        assert!(!AccessionKind::GeneSymbol.is_valid("U12345")); // GenBank
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10)
                .map(|_| AccessionKind::Uniprot.generate(&mut rng))
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10)
                .map(|_| AccessionKind::Uniprot.generate(&mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }
}
