//! Textual life-science formats exchanged by the simulated modules.
//!
//! Everything here grounds to [`StructuralType::Text`](crate::StructuralType):
//! the 2014-era services the paper evaluates exchange flat files and
//! identifier strings, and the "shim" modules that dominate its corpus (§5,
//! Table 3) exist precisely to translate between such formats.

pub mod accession;
pub mod document;
pub mod records;
pub mod reports;
pub mod sequence;
