//! Synthetic natural-language documents (abstracts, articles).
//!
//! Text-mining modules (`GetConcept` in the paper) extract pathway concepts
//! from documents, so generated documents embed recognizable concept
//! mentions (`the <X> pathway`) inside filler prose.

use rand::Rng;

/// Vocabulary of pathway concepts that can be mentioned in documents.
pub const PATHWAY_CONCEPTS: &[&str] = &[
    "glycolysis",
    "apoptosis",
    "citrate-cycle",
    "mapk-signaling",
    "wnt-signaling",
    "dna-replication",
    "oxidative-phosphorylation",
    "purine-metabolism",
    "cell-cycle",
    "p53-signaling",
];

const FILLER: &[&str] = &[
    "we report a systematic analysis of",
    "recent evidence implicates",
    "the role of",
    "expression profiling revealed",
    "our findings suggest that",
    "mutations were observed in genes related to",
    "a comparative study of",
    "quantitative measurements demonstrate",
];

/// Generates an abstract-length document mentioning the given concepts.
///
/// Each concept appears exactly once as `the <concept> pathway`, in order,
/// so extraction is well-defined and deterministic.
pub fn generate_abstract<R: Rng + ?Sized>(rng: &mut R, concepts: &[&str]) -> String {
    let mut out = String::new();
    for (i, concept) in concepts.iter().enumerate() {
        let filler = FILLER[rng.gen_range(0..FILLER.len())];
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!(
            "{} the {} pathway in human tissue samples.",
            capitalize(filler),
            concept
        ));
    }
    if concepts.is_empty() {
        out.push_str("No pathway-related findings were reported in this study.");
    }
    out
}

/// Generates a longer full-text-like document (several abstract-sized
/// sections) mentioning the given concepts once each.
pub fn generate_article<R: Rng + ?Sized>(rng: &mut R, concepts: &[&str]) -> String {
    let mut out = String::from("INTRODUCTION. ");
    out.push_str(&generate_abstract(rng, concepts));
    out.push_str(" METHODS. Samples were processed with standard protocols. ");
    out.push_str("RESULTS. ");
    let filler = FILLER[rng.gen_range(0..FILLER.len())];
    out.push_str(&capitalize(filler));
    out.push_str(" the measured effects. DISCUSSION. Further work is needed.");
    out
}

/// Extracts the pathway concepts mentioned in a document, in order of first
/// mention, without duplicates.
pub fn extract_concepts(document: &str) -> Vec<String> {
    let lower = document.to_lowercase();
    let mut found: Vec<(usize, String)> = Vec::new();
    for concept in PATHWAY_CONCEPTS {
        let needle = format!("the {concept} pathway");
        if let Some(pos) = lower.find(&needle) {
            found.push((pos, (*concept).to_string()));
        }
    }
    found.sort();
    found.into_iter().map(|(_, c)| c).collect()
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extraction_recovers_embedded_concepts() {
        let mut rng = StdRng::seed_from_u64(5);
        let concepts = ["apoptosis", "glycolysis"];
        let doc = generate_abstract(&mut rng, &concepts);
        assert_eq!(extract_concepts(&doc), vec!["apoptosis", "glycolysis"]);
    }

    #[test]
    fn empty_concepts_yield_extractable_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let doc = generate_abstract(&mut rng, &[]);
        assert!(extract_concepts(&doc).is_empty());
        assert!(!doc.is_empty());
    }

    #[test]
    fn article_contains_sections_and_concepts() {
        let mut rng = StdRng::seed_from_u64(9);
        let doc = generate_article(&mut rng, &["cell-cycle"]);
        assert!(doc.contains("INTRODUCTION"));
        assert!(doc.contains("DISCUSSION"));
        assert_eq!(extract_concepts(&doc), vec!["cell-cycle"]);
    }

    #[test]
    fn extraction_is_case_insensitive_and_ordered() {
        let doc = "THE P53-SIGNALING PATHWAY precedes the apoptosis pathway.";
        assert_eq!(extract_concepts(doc), vec!["p53-signaling", "apoptosis"]);
    }

    #[test]
    fn extraction_deduplicates() {
        let doc = "the apoptosis pathway and again the apoptosis pathway";
        assert_eq!(extract_concepts(doc), vec!["apoptosis"]);
    }
}
