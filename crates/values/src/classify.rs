//! Mapping values back to the *most specific* myGrid-like concept they
//! instantiate.
//!
//! Two places need this inverse of [`crate::synth`]:
//!
//! * **Output-partition coverage** (paper §3.3/§4.3): deciding which
//!   partitions of an output parameter's domain the generated data examples
//!   cover requires classifying the produced output values.
//! * **Provenance harvesting** (paper §4.1): data values in a provenance
//!   trace are annotated with the most specific concept recoverable from the
//!   value itself, falling back to the parameter's declared concept.
//!
//! Classification is syntactic and best-effort; values with no recognizable
//! syntax return `None` and callers fall back to contextual annotations.

use crate::formats::accession::AccessionKind;
use crate::formats::document;
use crate::formats::records::{EntryRecord, RecordFormat};
use crate::formats::reports::{AlignmentReport, AnnotationReport, IdentificationReport};
use crate::formats::sequence::{classify as classify_seq, SequenceKind};
use crate::value::Value;

/// Returns the name of the most specific concept `value` instantiates, or
/// `None` when nothing is recognized.
pub fn classify_concept(value: &Value) -> Option<&'static str> {
    match value {
        Value::Text(s) => classify_text(s),
        Value::Float(_) => Some("MeasurementData"),
        Value::List(items) => {
            // Float lists are measurement-ish; pick the most specific list
            // concept by length heuristics used by the synthesizer.
            if !items.is_empty() && items.iter().all(|v| matches!(v, Value::Float(_))) {
                Some(if items.len() < 20 {
                    "PeptideMassList"
                } else if items.len() < 60 {
                    "MassSpectrum"
                } else {
                    "ExpressionProfile"
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

fn classify_text(s: &str) -> Option<&'static str> {
    // Records first (multi-line, unambiguous).
    if let Some(format) = RecordFormat::detect(s) {
        return Some(match format {
            RecordFormat::Fasta => "FastaRecord",
            RecordFormat::Uniprot => "UniprotRecord",
            RecordFormat::GenBank => "GenBankRecord",
            RecordFormat::Embl => "EMBLRecord",
            RecordFormat::Pdb => "PDBRecord",
        });
    }
    if s.starts_with("SEQUENCE-RECORD") {
        return Some("SequenceRecord");
    }
    if let Ok(entry) = EntryRecord::parse(s) {
        return Some(match entry.kind.as_str() {
            "Pathway" => "PathwayRecord",
            "Enzyme" => "EnzymeRecord",
            "Compound" => "CompoundRecord",
            "Glycan" => "GlycanRecord",
            "Ligand" => "LigandRecord",
            "Gene" => "GeneRecord",
            _ => "BiologicalRecord",
        });
    }
    // Reports.
    if let Some(report) = AlignmentReport::parse(s) {
        return Some(match report.program.as_str() {
            "blastp" | "blastn" | "tblastx" => "BlastReport",
            "fasta" | "ssearch" => "FastaAlignmentReport",
            _ => "AlignmentReport",
        });
    }
    if IdentificationReport::parse(s).is_some() {
        return Some("IdentificationReport");
    }
    if AnnotationReport::parse(s).is_some() {
        return Some("AnnotationReport");
    }
    if s.starts_with("REPORT ") {
        return Some("Report");
    }
    if (s.ends_with(';')) && s.len() > 1 && !s.contains(' ') {
        return Some("PhylogeneticTree");
    }
    // Accessions (single token).
    if !s.contains(char::is_whitespace) {
        if let Some(kind) = AccessionKind::detect(s) {
            return Some(match kind {
                AccessionKind::Uniprot => "UniprotAccession",
                AccessionKind::Pdb => "PDBAccession",
                AccessionKind::Embl => "EMBLAccession",
                AccessionKind::GenBank => "GenBankAccession",
                AccessionKind::KeggGene => "KEGGGeneId",
                AccessionKind::KeggPathway => "KEGGPathwayId",
                AccessionKind::KeggCompound => "KEGGCompoundId",
                AccessionKind::KeggEnzyme => "KEGGEnzymeId",
                AccessionKind::Glycan => "GlycanAccession",
                AccessionKind::Ligand => "LigandAccession",
                AccessionKind::GoTerm => "GOTerm",
                AccessionKind::EcNumber => "ECNumber",
                AccessionKind::Entrez => "EntrezGeneId",
                AccessionKind::Ensembl => "EnsemblGeneId",
                AccessionKind::GeneSymbol => "GeneSymbol",
            });
        }
        if s.starts_with("XDB:") {
            return Some("DatabaseAccession");
        }
        if s.starts_with("TERM:") {
            return Some("OntologyTerm");
        }
        if s.starts_with("gene-") {
            return Some("GeneIdentifier");
        }
        if s.starts_with("id-") {
            return Some("Identifier");
        }
        if s.starts_with("keywords:") {
            return Some("KeywordSet");
        }
        if s.starts_with("xrefs:") {
            return Some("CrossReferenceSet");
        }
        if s.starts_with("annotation:") {
            return Some("AnnotationData");
        }
        if s.starts_with("data-blob-") {
            return Some("BioinformaticsData");
        }
        if document::PATHWAY_CONCEPTS.contains(&s) {
            return Some("PathwayConcept");
        }
        if crate::synth::FUNCTIONAL_CATEGORIES.contains(&s) {
            return Some("FunctionalCategory");
        }
        if crate::synth::ALGORITHM_NAMES.contains(&s) {
            return Some("AlgorithmName");
        }
        if crate::synth::DATABASE_NAMES.contains(&s) {
            return Some("DatabaseName");
        }
        // Bare sequences.
        if let Some(kind) = classify_seq(s) {
            return Some(match kind {
                SequenceKind::Dna => "DNASequence",
                SequenceKind::Rna => "RNASequence",
                SequenceKind::Protein => "ProteinSequence",
                SequenceKind::Generic => "BiologicalSequence",
            });
        }
    }
    // Documents last: anything sentence-like.
    if s.contains(' ') {
        if s.contains("INTRODUCTION") {
            return Some("FullTextArticle");
        }
        if !document::extract_concepts(s).is_empty() || s.contains("study") || s.contains("notes") {
            return Some("LiteratureAbstract");
        }
        return Some("Document");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Concepts whose synthesized values must classify back to themselves.
    const EXACT: &[&str] = &[
        "DNASequence",
        "RNASequence",
        "ProteinSequence",
        "BiologicalSequence",
        "UniprotAccession",
        "PDBAccession",
        "EMBLAccession",
        "KEGGGeneId",
        "KEGGPathwayId",
        "KEGGCompoundId",
        "KEGGEnzymeId",
        "GlycanAccession",
        "LigandAccession",
        "GOTerm",
        "EnsemblGeneId",
        "UniprotRecord",
        "FastaRecord",
        "GenBankRecord",
        "EMBLRecord",
        "PDBRecord",
        "SequenceRecord",
        "PathwayRecord",
        "EnzymeRecord",
        "CompoundRecord",
        "GlycanRecord",
        "LigandRecord",
        "GeneRecord",
        "BlastReport",
        "FastaAlignmentReport",
        "IdentificationReport",
        "AnnotationReport",
        "Report",
        "PhylogeneticTree",
        "DatabaseAccession",
        "OntologyTerm",
        "GeneIdentifier",
        "Identifier",
        "AnnotationData",
        "BioinformaticsData",
        "PathwayConcept",
        "FunctionalCategory",
        "KeywordSet",
        "CrossReferenceSet",
        "AlgorithmName",
        "PeptideMassList",
    ];

    #[test]
    fn synthesized_values_classify_back() {
        let mut rng = StdRng::seed_from_u64(13);
        for &concept in EXACT {
            for _ in 0..20 {
                let v = synthesize(concept, &mut rng).unwrap();
                assert_eq!(
                    classify_concept(&v),
                    Some(concept),
                    "value for {concept}: {v}"
                );
            }
        }
    }

    #[test]
    fn unrecognizable_values_return_none() {
        assert_eq!(classify_concept(&Value::Null), None);
        assert_eq!(classify_concept(&Value::Boolean(true)), None);
        assert_eq!(classify_concept(&Value::List(vec![Value::Null])), None);
    }

    #[test]
    fn floats_are_measurements() {
        assert_eq!(
            classify_concept(&Value::Float(1.5)),
            Some("MeasurementData")
        );
    }

    #[test]
    fn newick_is_a_tree() {
        assert_eq!(
            classify_concept(&Value::text("((P12345,P54321),O11111);")),
            Some("PhylogeneticTree")
        );
    }
}
