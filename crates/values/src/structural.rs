//! Structural ("grounding") types of parameters and values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The structural data type of a parameter or value — the paper's `str(i)`.
///
/// The paper names `String` and `Integer` as examples; scientific modules in
/// the evaluated corpus additionally exchange floats, booleans and lists
/// (e.g. a list of peptide masses, a list of homologous accessions). Nested
/// lists are allowed (`List(List(Float))`) although the generated universe
/// only uses one level.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructuralType {
    /// UTF-8 text. All flat-file formats ground to `Text`.
    Text,
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// Boolean flag.
    Boolean,
    /// Homogeneous list of the inner type.
    List(Box<StructuralType>),
}

impl StructuralType {
    /// Convenience constructor for a list type.
    pub fn list_of(inner: StructuralType) -> Self {
        StructuralType::List(Box::new(inner))
    }

    /// Structural compatibility, as required when selecting pool instances
    /// for a parameter (§3.2: "the data structure … of the instances selected
    /// need to be compatible with the data structure of the input parameter").
    ///
    /// Compatibility is exact equality except that an `Integer` may feed a
    /// `Float` parameter (a lossless widening every service toolkit the paper
    /// surveys performs implicitly), recursively inside lists.
    pub fn accepts(&self, actual: &StructuralType) -> bool {
        match (self, actual) {
            (StructuralType::Float, StructuralType::Integer) => true,
            (StructuralType::List(a), StructuralType::List(b)) => a.accepts(b),
            (a, b) => a == b,
        }
    }

    /// Nesting depth: 0 for scalars, 1 + inner depth for lists.
    pub fn depth(&self) -> usize {
        match self {
            StructuralType::List(inner) => 1 + inner.depth(),
            _ => 0,
        }
    }

    /// The scalar type at the bottom of any list nesting.
    pub fn scalar(&self) -> &StructuralType {
        match self {
            StructuralType::List(inner) => inner.scalar(),
            other => other,
        }
    }
}

impl fmt::Display for StructuralType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralType::Text => write!(f, "Text"),
            StructuralType::Integer => write!(f, "Integer"),
            StructuralType::Float => write!(f, "Float"),
            StructuralType::Boolean => write!(f, "Boolean"),
            StructuralType::List(inner) => write!(f, "List<{inner}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_nested_lists() {
        let t = StructuralType::list_of(StructuralType::list_of(StructuralType::Float));
        assert_eq!(t.to_string(), "List<List<Float>>");
    }

    #[test]
    fn accepts_is_reflexive() {
        for t in [
            StructuralType::Text,
            StructuralType::Integer,
            StructuralType::Float,
            StructuralType::Boolean,
            StructuralType::list_of(StructuralType::Text),
        ] {
            assert!(t.accepts(&t), "{t} should accept itself");
        }
    }

    #[test]
    fn integer_widens_to_float_but_not_back() {
        assert!(StructuralType::Float.accepts(&StructuralType::Integer));
        assert!(!StructuralType::Integer.accepts(&StructuralType::Float));
    }

    #[test]
    fn widening_applies_inside_lists() {
        let floats = StructuralType::list_of(StructuralType::Float);
        let ints = StructuralType::list_of(StructuralType::Integer);
        assert!(floats.accepts(&ints));
        assert!(!ints.accepts(&floats));
    }

    #[test]
    fn text_and_boolean_do_not_cross() {
        assert!(!StructuralType::Text.accepts(&StructuralType::Boolean));
        assert!(!StructuralType::Boolean.accepts(&StructuralType::Text));
    }

    #[test]
    fn depth_and_scalar() {
        let t = StructuralType::list_of(StructuralType::list_of(StructuralType::Integer));
        assert_eq!(t.depth(), 2);
        assert_eq!(*t.scalar(), StructuralType::Integer);
        assert_eq!(StructuralType::Text.depth(), 0);
    }
}
