//! Concept-keyed synthesis of realistic values.
//!
//! Maps each *realizable* concept of the myGrid-like ontology (by name, so
//! this crate stays ontology-agnostic) to a deterministic, seeded generator
//! of values that **realize** that concept: an instance of the concept that
//! is an instance of none of its strict sub-concepts. Interior concepts get
//! deliberately "generic" forms (e.g. a nucleotide sequence with IUPAC
//! ambiguity codes realizes `BiologicalSequence` without being DNA, RNA or
//! protein).
//!
//! Used to seed the simulated databases behind retrieval modules and to
//! populate annotated instance pools.

use crate::formats::accession::AccessionKind;
use crate::formats::document;
use crate::formats::records::{EntryRecord, RecordFormat, SeqEntry};
use crate::formats::reports::{AlignmentHit, AlignmentReport};
use crate::formats::sequence::SequenceKind;
use crate::structural::StructuralType;
use crate::value::Value;
use rand::Rng;

/// Algorithm names an `AlgorithmName` setting may take.
pub const ALGORITHM_NAMES: &[&str] = &["blastp", "blastn", "fasta", "ssearch", "tblastx"];
/// Database names a `DatabaseName` setting may take.
pub const DATABASE_NAMES: &[&str] = &["uniprot", "pdb", "embl", "genbank", "kegg"];
/// Functional categories for `FunctionalCategory` values.
pub const FUNCTIONAL_CATEGORIES: &[&str] = &[
    "enzyme",
    "transporter",
    "receptor",
    "structural",
    "regulatory",
];

/// Synthesizes a value realizing `concept`, or `None` when the concept name
/// is unknown or abstract (abstract concepts cannot be realized).
pub fn synthesize<R: Rng + ?Sized>(concept: &str, rng: &mut R) -> Option<Value> {
    let v = match concept {
        // --- roots and generic interiors -------------------------------
        "BioinformaticsData" => Value::text(format!("data-blob-{:08x}", rng.gen::<u32>())),
        "BiologicalSequence" => {
            let len = rng.gen_range(30..90);
            Value::text(SequenceKind::Generic.generate(rng, len))
        }
        "DNASequence" => {
            let len = rng.gen_range(30..120);
            Value::text(SequenceKind::Dna.generate(rng, len))
        }
        "RNASequence" => {
            let len = rng.gen_range(30..120);
            Value::text(SequenceKind::Rna.generate(rng, len))
        }
        "ProteinSequence" => {
            let len = rng.gen_range(30..120);
            Value::text(SequenceKind::Protein.generate(rng, len))
        }
        "Identifier" => Value::text(format!("id-{:06}", rng.gen_range(0..1_000_000u32))),
        "DatabaseAccession" => Value::text(format!("XDB:{:06}", rng.gen_range(0..1_000_000u32))),
        "OntologyTerm" => Value::text(format!("TERM:{:05}", rng.gen_range(0..100_000u32))),
        "GeneIdentifier" => Value::text(format!("gene-{:05}", rng.gen_range(0..100_000u32))),
        // --- concrete accessions ---------------------------------------
        "UniprotAccession" => Value::text(AccessionKind::Uniprot.generate(rng)),
        "PDBAccession" => Value::text(AccessionKind::Pdb.generate(rng)),
        "EMBLAccession" => Value::text(AccessionKind::Embl.generate(rng)),
        "GenBankAccession" => Value::text(AccessionKind::GenBank.generate(rng)),
        "KEGGGeneId" => Value::text(AccessionKind::KeggGene.generate(rng)),
        "KEGGPathwayId" => Value::text(AccessionKind::KeggPathway.generate(rng)),
        "KEGGCompoundId" => Value::text(AccessionKind::KeggCompound.generate(rng)),
        "KEGGEnzymeId" => Value::text(AccessionKind::KeggEnzyme.generate(rng)),
        "GlycanAccession" => Value::text(AccessionKind::Glycan.generate(rng)),
        "LigandAccession" => Value::text(AccessionKind::Ligand.generate(rng)),
        "GOTerm" => Value::text(AccessionKind::GoTerm.generate(rng)),
        "ECNumber" => Value::text(AccessionKind::EcNumber.generate(rng)),
        "EntrezGeneId" => Value::text(AccessionKind::Entrez.generate(rng)),
        "EnsemblGeneId" => Value::text(AccessionKind::Ensembl.generate(rng)),
        "GeneSymbol" => Value::text(AccessionKind::GeneSymbol.generate(rng)),
        // --- sequence records -------------------------------------------
        "SequenceRecord" => {
            let entry = seq_entry(rng, AccessionKind::GenBank, SequenceKind::Generic);
            Value::text(format!(
                "SEQUENCE-RECORD {}\nDESC {}\nSEQ  {}\n",
                entry.accession, entry.description, entry.sequence
            ))
        }
        "UniprotRecord" => Value::text(RecordFormat::Uniprot.render(&seq_entry(
            rng,
            AccessionKind::Uniprot,
            SequenceKind::Protein,
        ))),
        "FastaRecord" => Value::text(RecordFormat::Fasta.render(&seq_entry(
            rng,
            AccessionKind::Uniprot,
            SequenceKind::Protein,
        ))),
        "GenBankRecord" => Value::text(RecordFormat::GenBank.render(&seq_entry(
            rng,
            AccessionKind::GenBank,
            SequenceKind::Dna,
        ))),
        "EMBLRecord" => Value::text(RecordFormat::Embl.render(&seq_entry(
            rng,
            AccessionKind::Embl,
            SequenceKind::Dna,
        ))),
        "PDBRecord" => Value::text(RecordFormat::Pdb.render(&seq_entry(
            rng,
            AccessionKind::Pdb,
            SequenceKind::Protein,
        ))),
        // --- KEGG-style records ------------------------------------------
        "PathwayRecord" => Value::text(entry_record(rng, AccessionKind::KeggPathway, "Pathway")),
        "EnzymeRecord" => Value::text(entry_record(rng, AccessionKind::KeggEnzyme, "Enzyme")),
        "CompoundRecord" => Value::text(entry_record(rng, AccessionKind::KeggCompound, "Compound")),
        "GlycanRecord" => Value::text(entry_record(rng, AccessionKind::Glycan, "Glycan")),
        "LigandRecord" => Value::text(entry_record(rng, AccessionKind::Ligand, "Ligand")),
        "GeneRecord" => Value::text(entry_record(rng, AccessionKind::KeggGene, "Gene")),
        // --- reports -----------------------------------------------------
        "Report" => Value::text(format!(
            "REPORT generic\nSTATUS ok\nPAYLOAD {:08x}\n",
            rng.gen::<u32>()
        )),
        "AlignmentReport" => Value::text(alignment_report(rng, "generic-align")),
        "BlastReport" => Value::text(alignment_report(rng, "blastp")),
        "FastaAlignmentReport" => Value::text(alignment_report(rng, "fasta")),
        "IdentificationReport" => Value::text(
            crate::formats::reports::IdentificationReport {
                accession: AccessionKind::Uniprot.generate(rng),
                confidence: rng.gen_range(0.5..1.0),
                matched_peptides: rng.gen_range(3..30),
            }
            .to_string(),
        ),
        "PhylogeneticTree" => {
            let n = rng.gen_range(3..7usize);
            let leaves: Vec<String> = (0..n)
                .map(|_| AccessionKind::Uniprot.generate(rng))
                .collect();
            Value::text(crate::formats::reports::newick_ladder(&leaves))
        }
        "AnnotationReport" => {
            let n = rng.gen_range(1..4usize);
            let terms = (0..n)
                .map(|_| (AccessionKind::GoTerm.generate(rng), rng.gen_range(0.0..1.0)))
                .collect();
            Value::text(
                crate::formats::reports::AnnotationReport {
                    accession: AccessionKind::Uniprot.generate(rng),
                    terms,
                }
                .render(),
            )
        }
        // --- documents ----------------------------------------------------
        "Document" => Value::text(format!(
            "Untyped document #{:04}: general laboratory notes without pathway mentions.",
            rng.gen_range(0..10_000u32)
        )),
        "LiteratureAbstract" => {
            let concepts = pick_concepts(rng);
            let refs: Vec<&str> = concepts.iter().map(String::as_str).collect();
            Value::text(document::generate_abstract(rng, &refs))
        }
        "FullTextArticle" => {
            let concepts = pick_concepts(rng);
            let refs: Vec<&str> = concepts.iter().map(String::as_str).collect();
            Value::text(document::generate_article(rng, &refs))
        }
        // --- annotation data ----------------------------------------------
        "AnnotationData" => Value::text(format!("annotation:{:04x}", rng.gen_range(0..0xFFFFu32))),
        "PathwayConcept" => Value::text(
            document::PATHWAY_CONCEPTS[rng.gen_range(0..document::PATHWAY_CONCEPTS.len())],
        ),
        "FunctionalCategory" => {
            Value::text(FUNCTIONAL_CATEGORIES[rng.gen_range(0..FUNCTIONAL_CATEGORIES.len())])
        }
        "KeywordSet" => {
            let n = rng.gen_range(2..5usize);
            let words: Vec<&str> = (0..n)
                .map(|_| FUNCTIONAL_CATEGORIES[rng.gen_range(0..FUNCTIONAL_CATEGORIES.len())])
                .collect();
            Value::text(format!("keywords:{}", words.join(",")))
        }
        "CrossReferenceSet" => {
            let n = rng.gen_range(1..4usize);
            let refs: Vec<String> = (0..n)
                .map(|_| AccessionKind::Uniprot.generate(rng))
                .collect();
            Value::text(format!("xrefs:{}", refs.join("|")))
        }
        // --- settings ------------------------------------------------------
        "ErrorTolerance" => Value::Float((rng.gen_range(1..=100u32) as f64) / 10.0),
        "AlgorithmName" => Value::text(ALGORITHM_NAMES[rng.gen_range(0..ALGORITHM_NAMES.len())]),
        "DatabaseName" => Value::text(DATABASE_NAMES[rng.gen_range(0..DATABASE_NAMES.len())]),
        "ScoreThreshold" => Value::Float(rng.gen_range(0..2000u32) as f64 / 2.0),
        "EValueCutoff" => Value::Float(10f64.powi(-rng.gen_range(0..50i32))),
        // --- measurements ---------------------------------------------------
        "MeasurementData" => Value::Float(rng.gen_range(0.0..1e4)),
        "PeptideMassList" => {
            let n = rng.gen_range(5..20usize);
            Value::List(
                (0..n)
                    .map(|_| Value::Float((rng.gen_range(4000..35_000u32) as f64) / 10.0))
                    .collect(),
            )
        }
        "MassSpectrum" => {
            let n = rng.gen_range(20..60usize);
            Value::List(
                (0..n)
                    .map(|_| Value::Float((rng.gen_range(500..30_000u32) as f64) / 10.0))
                    .collect(),
            )
        }
        "ExpressionProfile" => {
            let n = rng.gen_range(60..100usize);
            Value::List(
                (0..n)
                    .map(|_| Value::Float((rng.gen_range(-5000..5000i32) as f64) / 100.0))
                    .collect(),
            )
        }
        _ => return None,
    };
    Some(v)
}

/// The structural type of values synthesized for `concept`, or `None` when
/// the concept is unknown or abstract.
pub fn structural_type_of(concept: &str) -> Option<StructuralType> {
    let t = match concept {
        "ErrorTolerance" | "ScoreThreshold" | "EValueCutoff" | "MeasurementData" => {
            StructuralType::Float
        }
        "PeptideMassList" | "MassSpectrum" | "ExpressionProfile" => {
            StructuralType::list_of(StructuralType::Float)
        }
        // Abstract concepts have no realization and hence no grounding here.
        "NucleotideSequence" | "KEGGAccession" | "BiologicalRecord" | "Setting" => return None,
        // Everything else in the myGrid-like ontology grounds to text.
        "BioinformaticsData"
        | "BiologicalSequence"
        | "DNASequence"
        | "RNASequence"
        | "ProteinSequence"
        | "Identifier"
        | "DatabaseAccession"
        | "UniprotAccession"
        | "PDBAccession"
        | "EMBLAccession"
        | "GenBankAccession"
        | "KEGGGeneId"
        | "KEGGPathwayId"
        | "KEGGCompoundId"
        | "KEGGEnzymeId"
        | "GlycanAccession"
        | "LigandAccession"
        | "OntologyTerm"
        | "GOTerm"
        | "ECNumber"
        | "GeneIdentifier"
        | "EntrezGeneId"
        | "EnsemblGeneId"
        | "GeneSymbol"
        | "SequenceRecord"
        | "UniprotRecord"
        | "FastaRecord"
        | "GenBankRecord"
        | "EMBLRecord"
        | "PDBRecord"
        | "PathwayRecord"
        | "EnzymeRecord"
        | "CompoundRecord"
        | "GlycanRecord"
        | "LigandRecord"
        | "GeneRecord"
        | "Report"
        | "AlignmentReport"
        | "BlastReport"
        | "FastaAlignmentReport"
        | "IdentificationReport"
        | "PhylogeneticTree"
        | "AnnotationReport"
        | "Document"
        | "LiteratureAbstract"
        | "FullTextArticle"
        | "AnnotationData"
        | "PathwayConcept"
        | "FunctionalCategory"
        | "KeywordSet"
        | "CrossReferenceSet"
        | "AlgorithmName"
        | "DatabaseName" => StructuralType::Text,
        _ => return None,
    };
    Some(t)
}

fn seq_entry<R: Rng + ?Sized>(rng: &mut R, acc: AccessionKind, kind: SequenceKind) -> SeqEntry {
    const ADJ: &[&str] = &["putative", "conserved", "hypothetical", "characterized"];
    const NOUN: &[&str] = &["kinase", "transporter", "polymerase", "receptor", "ligase"];
    const ORG: &[&str] = &[
        "Homo sapiens",
        "Mus musculus",
        "Escherichia coli",
        "Saccharomyces cerevisiae",
    ];
    SeqEntry {
        accession: acc.generate(rng),
        description: format!(
            "{} {}",
            ADJ[rng.gen_range(0..ADJ.len())],
            NOUN[rng.gen_range(0..NOUN.len())]
        ),
        organism: ORG[rng.gen_range(0..ORG.len())].to_string(),
        sequence: {
            let len = rng.gen_range(40..120);
            kind.generate(rng, len)
        },
    }
}

fn entry_record<R: Rng + ?Sized>(rng: &mut R, acc: AccessionKind, kind: &str) -> String {
    const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon"];
    let links = (0..rng.gen_range(0..3usize))
        .map(|_| AccessionKind::KeggGene.generate(rng))
        .collect();
    EntryRecord {
        accession: acc.generate(rng),
        kind: kind.to_string(),
        name: format!(
            "{}-{}",
            kind.to_lowercase(),
            NAMES[rng.gen_range(0..NAMES.len())]
        ),
        definition: format!("simulated {kind} entry"),
        links,
    }
    .render()
}

fn alignment_report<R: Rng + ?Sized>(rng: &mut R, program: &str) -> String {
    let n = rng.gen_range(1..6usize);
    let hits = (0..n)
        .map(|i| AlignmentHit {
            accession: AccessionKind::Uniprot.generate(rng),
            score: rng.gen_range(50.0..900.0) - i as f64 * 10.0,
            evalue: 10f64.powi(-(rng.gen_range(5..60i32))),
        })
        .collect();
    AlignmentReport {
        program: program.to_string(),
        database: DATABASE_NAMES[rng.gen_range(0..DATABASE_NAMES.len())].to_string(),
        query: AccessionKind::Uniprot.generate(rng),
        hits,
    }
    .render()
}

fn pick_concepts<R: Rng + ?Sized>(rng: &mut R) -> Vec<String> {
    let n = rng.gen_range(1..4usize);
    let mut picked = Vec::with_capacity(n);
    while picked.len() < n {
        let c = document::PATHWAY_CONCEPTS[rng.gen_range(0..document::PATHWAY_CONCEPTS.len())];
        if !picked.iter().any(|p: &String| p == c) {
            picked.push(c.to_string());
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::sequence::{classify, SequenceKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All concepts `synthesize` supports (mirrors the match arms).
    pub const SUPPORTED: &[&str] = &[
        "BioinformaticsData",
        "BiologicalSequence",
        "DNASequence",
        "RNASequence",
        "ProteinSequence",
        "Identifier",
        "DatabaseAccession",
        "OntologyTerm",
        "GeneIdentifier",
        "UniprotAccession",
        "PDBAccession",
        "EMBLAccession",
        "GenBankAccession",
        "KEGGGeneId",
        "KEGGPathwayId",
        "KEGGCompoundId",
        "KEGGEnzymeId",
        "GlycanAccession",
        "LigandAccession",
        "GOTerm",
        "ECNumber",
        "EntrezGeneId",
        "EnsemblGeneId",
        "GeneSymbol",
        "SequenceRecord",
        "UniprotRecord",
        "FastaRecord",
        "GenBankRecord",
        "EMBLRecord",
        "PDBRecord",
        "PathwayRecord",
        "EnzymeRecord",
        "CompoundRecord",
        "GlycanRecord",
        "LigandRecord",
        "GeneRecord",
        "Report",
        "AlignmentReport",
        "BlastReport",
        "FastaAlignmentReport",
        "IdentificationReport",
        "PhylogeneticTree",
        "AnnotationReport",
        "Document",
        "LiteratureAbstract",
        "FullTextArticle",
        "AnnotationData",
        "PathwayConcept",
        "FunctionalCategory",
        "KeywordSet",
        "CrossReferenceSet",
        "ErrorTolerance",
        "AlgorithmName",
        "DatabaseName",
        "ScoreThreshold",
        "EValueCutoff",
        "MeasurementData",
        "PeptideMassList",
        "MassSpectrum",
        "ExpressionProfile",
    ];

    #[test]
    fn every_supported_concept_synthesizes_and_types_agree() {
        let mut rng = StdRng::seed_from_u64(21);
        for &concept in SUPPORTED {
            let v = synthesize(concept, &mut rng)
                .unwrap_or_else(|| panic!("no generator for {concept}"));
            let declared = structural_type_of(concept)
                .unwrap_or_else(|| panic!("no structural type for {concept}"));
            assert!(
                v.conforms_to(&declared),
                "{concept}: value {v} does not conform to {declared}"
            );
        }
    }

    #[test]
    fn abstract_and_unknown_concepts_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        for c in ["NucleotideSequence", "KEGGAccession", "Setting", "Nope"] {
            assert!(synthesize(c, &mut rng).is_none(), "{c}");
            assert!(structural_type_of(c).is_none(), "{c}");
        }
    }

    #[test]
    fn generic_sequences_realize_biological_sequence_only() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = synthesize("BiologicalSequence", &mut rng).unwrap();
            let kind = classify(v.as_text().unwrap()).unwrap();
            assert_eq!(kind, SequenceKind::Generic, "{v}");
        }
    }

    #[test]
    fn dna_values_are_dna() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let v = synthesize("DNASequence", &mut rng).unwrap();
            assert_eq!(classify(v.as_text().unwrap()), Some(SequenceKind::Dna));
        }
    }

    #[test]
    fn uniprot_record_values_parse() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = synthesize("UniprotRecord", &mut rng).unwrap();
        let parsed = RecordFormat::Uniprot.parse(v.as_text().unwrap()).unwrap();
        assert!(AccessionKind::Uniprot.is_valid(&parsed.accession));
    }

    #[test]
    fn literature_abstract_contains_extractable_concepts() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = synthesize("LiteratureAbstract", &mut rng).unwrap();
        assert!(!document::extract_concepts(v.as_text().unwrap()).is_empty());
    }

    #[test]
    fn generic_accessions_realize_no_concrete_kind() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let v = synthesize("DatabaseAccession", &mut rng).unwrap();
            let s = v.as_text().unwrap();
            assert!(
                AccessionKind::detect(s).is_none(),
                "generic accession {s} collides with a concrete kind"
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = {
            let mut rng = StdRng::seed_from_u64(42);
            synthesize("BlastReport", &mut rng).unwrap()
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(42);
            synthesize("BlastReport", &mut rng).unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn error_tolerance_is_percentage_like() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = synthesize("ErrorTolerance", &mut rng).unwrap();
            let f = v.as_f64().unwrap();
            assert!((0.1..=10.0).contains(&f), "{f}");
        }
    }
}
