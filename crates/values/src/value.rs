//! Concrete data values exchanged by scientific modules.

use crate::structural::StructuralType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete data value: the `ins` of the paper's `⟨i, insᵢ⟩` pairs.
///
/// Values flow through module invocations, workflow enactments, provenance
/// traces, annotated instance pools and data examples, so they need cheap
/// equality and hashing. Floats are compared and hashed by their bit pattern
/// (two NaNs with the same bits are equal), which gives us a lawful `Eq`
/// without banning floats — module output comparison in the matcher (§6)
/// relies on this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / optional value ("some of the input parameters may be
    /// associated with null (or default) values", §2).
    Null,
    /// UTF-8 text, including every flat-file format.
    Text(String),
    Integer(i64),
    Float(f64),
    Boolean(bool),
    /// Homogeneous list. Homogeneity is maintained by construction in this
    /// codebase, not enforced by the type.
    List(Vec<Value>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Integer(a), Value::Integer(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Boolean(a), Value::Boolean(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Text(s) => s.hash(state),
            Value::Integer(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Boolean(b) => b.hash(state),
            Value::List(items) => {
                items.len().hash(state);
                for item in items {
                    item.hash(state);
                }
            }
        }
    }
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The structural type of this value, or `None` for `Null` (null carries
    /// no structure) and for empty lists (element type unknowable).
    pub fn structural_type(&self) -> Option<StructuralType> {
        match self {
            Value::Null => None,
            Value::Text(_) => Some(StructuralType::Text),
            Value::Integer(_) => Some(StructuralType::Integer),
            Value::Float(_) => Some(StructuralType::Float),
            Value::Boolean(_) => Some(StructuralType::Boolean),
            Value::List(items) => {
                let inner = items.first()?.structural_type()?;
                Some(StructuralType::list_of(inner))
            }
        }
    }

    /// Whether this value can feed a parameter of the given structural type.
    ///
    /// `Null` is accepted everywhere (optional parameters); an empty list is
    /// accepted by every list type.
    pub fn conforms_to(&self, ty: &StructuralType) -> bool {
        match self {
            Value::Null => true,
            Value::List(items) => match ty {
                StructuralType::List(inner) => items.iter().all(|v| v.conforms_to(inner)),
                _ => false,
            },
            _ => match self.structural_type() {
                Some(actual) => ty.accepts(&actual),
                None => false,
            },
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rough heap footprint of this value in bytes: the enum itself plus
    /// owned text bytes and list spines. Used by cache-size telemetry
    /// (`MatchSession` memoized-report accounting), where an estimate is
    /// enough — exact allocator overhead is not modeled.
    pub fn approx_heap_bytes(&self) -> usize {
        let own = std::mem::size_of::<Value>();
        match self {
            Value::Text(s) => own + s.capacity(),
            Value::List(items) => own + items.iter().map(Value::approx_heap_bytes).sum::<usize>(),
            _ => own,
        }
    }

    /// Borrows the inner text of a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the elements of a `List` value.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// A short, single-line rendering for logs and data-example displays:
    /// long text is elided in the middle, lists show their first elements.
    pub fn preview(&self, max_len: usize) -> String {
        let full = self.to_string();
        if full.chars().count() <= max_len || max_len < 8 {
            return full;
        }
        let head: String = full.chars().take(max_len - 5).collect();
        let tail: String = {
            let chars: Vec<char> = full.chars().collect();
            chars[chars.len() - 3..].iter().collect()
        };
        format!("{head}…{tail}")
    }

    /// Approximate in-memory payload size in bytes, used by pool statistics.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Text(s) => s.len(),
            Value::Integer(_) | Value::Float(_) => 8,
            Value::Boolean(_) => 1,
            Value::List(items) => items.iter().map(Value::payload_bytes).sum(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Text(s) => {
                // Single-line rendering: newlines become ⏎ so data examples
                // stay tabular.
                if s.contains('\n') {
                    write!(f, "{}", s.replace('\n', "⏎"))
                } else {
                    write!(f, "{s}")
                }
            }
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::List(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(Value::Integer(1), Value::Float(1.0));
        assert_ne!(Value::Text("1".into()), Value::Integer(1));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(2.5)), hash_of(&Value::Float(2.5)));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::List(vec![Value::Integer(1), Value::text("x")]);
        let b = Value::List(vec![Value::Integer(1), Value::text("x")]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn structural_type_of_values() {
        assert_eq!(
            Value::text("hi").structural_type(),
            Some(StructuralType::Text)
        );
        assert_eq!(Value::Null.structural_type(), None);
        assert_eq!(Value::List(vec![]).structural_type(), None);
        assert_eq!(
            Value::from(vec![1i64, 2]).structural_type(),
            Some(StructuralType::list_of(StructuralType::Integer))
        );
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Null.conforms_to(&StructuralType::Text));
        assert!(Value::List(vec![]).conforms_to(&StructuralType::list_of(StructuralType::Float)));
        assert!(!Value::List(vec![]).conforms_to(&StructuralType::Text));
        // Integer elements widen into float lists.
        assert!(
            Value::from(vec![1i64, 2]).conforms_to(&StructuralType::list_of(StructuralType::Float))
        );
        assert!(!Value::from(vec![1.5f64])
            .conforms_to(&StructuralType::list_of(StructuralType::Integer)));
    }

    #[test]
    fn display_is_single_line() {
        let v = Value::text("line1\nline2");
        assert!(!v.to_string().contains('\n'));
        let list = Value::from(vec![1i64, 2, 3]);
        assert_eq!(list.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn preview_elides_long_text() {
        let v = Value::text("x".repeat(100));
        let p = v.preview(20);
        assert!(p.chars().count() <= 21, "{p}");
        assert!(p.contains('…'));
        assert_eq!(Value::text("short").preview(20), "short");
    }

    #[test]
    fn numeric_views_widen() {
        assert_eq!(Value::Integer(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Boolean(true).as_bool(), Some(true));
    }

    #[test]
    fn payload_bytes_sums_lists() {
        let v = Value::List(vec![Value::text("abcd"), Value::Integer(1)]);
        assert_eq!(v.payload_bytes(), 12);
    }

    #[test]
    fn approx_heap_bytes_counts_text_and_nesting() {
        let enum_size = std::mem::size_of::<Value>();
        assert_eq!(Value::Integer(1).approx_heap_bytes(), enum_size);
        assert!(Value::text("abcd").approx_heap_bytes() >= enum_size + 4);
        let list = Value::List(vec![Value::text("abcd"), Value::Integer(1)]);
        assert!(list.approx_heap_bytes() >= 3 * enum_size + 4);
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![
            Value::Null,
            Value::text("P12345"),
            Value::Float(1.5),
            Value::Boolean(false),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
