//! # dex-values
//!
//! The structural side of module parameters: data values, structural types,
//! and the textual life-science formats (FASTA, Uniprot flat files,
//! accessions, reports, …) that the synthetic module universe manipulates.
//!
//! The paper's model (§2) characterizes a parameter by a *structural* type
//! (`str(i)`, e.g. `String` or `Integer`) and a *semantic* type (`sem(i)`, an
//! ontology concept). This crate owns the structural half:
//!
//! * [`StructuralType`] — the grounding of a parameter.
//! * [`Value`] — a concrete instance flowing through modules, workflows,
//!   provenance traces, instance pools and data examples.
//! * [`formats`] — parsers/printers/validators for the life-science text
//!   formats the simulated modules exchange. Shim modules (format
//!   transformation, the paper's biggest category) are literally format
//!   conversions between these.
//! * [`synth`] — deterministic, seeded generators producing realistic values
//!   for each myGrid-like concept, used to populate instance pools and the
//!   simulated databases behind retrieval modules.
//!
//! ```
//! use dex_values::classify::classify_concept;
//! use dex_values::Value;
//!
//! assert_eq!(classify_concept(&Value::text("P12345")), Some("UniprotAccession"));
//! assert_eq!(classify_concept(&Value::text("ACGTACGT")), Some("DNASequence"));
//! assert_eq!(classify_concept(&Value::text("GO:0008150")), Some("GOTerm"));
//! ```

pub mod classify;
pub mod formats;
pub mod structural;
pub mod synth;
pub mod value;

pub use structural::StructuralType;
pub use value::Value;
