//! # dex-registry
//!
//! The scientific module registry of the paper's architecture (Figure 3):
//! the durable store that holds, for every known module, its annotated
//! interface and the data examples generated to characterize its behavior.
//! Curators write to it (steps 1–2 of the figure); experiment designers
//! explore it and compare modules through it (steps 3–4).
//!
//! The registry is deliberately independent of live module handles — it
//! keeps descriptors for modules whose providers have long withdrawn them,
//! which is exactly what makes §6-style repair possible.

pub mod registry;
pub mod search;
pub mod stats;

pub use registry::{ModuleRegistry, RegistryEntry};
pub use search::SearchQuery;
pub use stats::RegistryStats;

use dex_core::{generate_examples, GenerationConfig, GenerationError};
use dex_modules::ModuleCatalog;
use dex_ontology::Ontology;
use dex_pool::InstancePool;

/// Runs the full annotation pipeline of Figure 3 over every available
/// module of a catalog: register its (already curated) parameter
/// annotations, generate its data examples, store both.
///
/// Modules whose generation fails outright (unknown concepts, combination
/// explosion) are registered without examples and reported.
pub fn annotate_catalog(
    catalog: &ModuleCatalog,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> (
    ModuleRegistry,
    Vec<(dex_modules::ModuleId, GenerationError)>,
) {
    let mut registry = ModuleRegistry::new("registry");
    let mut failures = Vec::new();
    for (id, module) in catalog.iter_available() {
        registry.register(module.descriptor().clone());
        match generate_examples(module.as_ref(), ontology, pool, config) {
            Ok(report) => registry
                .attach_examples(id, report.examples)
                .expect("just registered"),
            Err(e) => failures.push((id.clone(), e)),
        }
    }
    (registry, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_ontology::mygrid;
    use dex_pool::build_synthetic_pool;

    #[test]
    fn annotate_catalog_registers_and_examples_everything() {
        let universe = dex_universe::build();
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 4, 9);
        let (registry, failures) = annotate_catalog(
            &universe.catalog,
            &onto,
            &pool,
            &GenerationConfig::default(),
        );
        assert!(failures.is_empty(), "{failures:?}");
        // All 324 modules are currently available (decay not yet run).
        assert_eq!(registry.len(), 324);
        assert!(registry
            .entries()
            .all(|(_, e)| e.examples.as_ref().is_some_and(|x| !x.is_empty())));
    }
}
