//! Registry statistics, for dashboards and experiment reporting.

use crate::registry::ModuleRegistry;
use dex_modules::ModuleKind;
use std::collections::BTreeMap;

/// Summary statistics over a registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryStats {
    /// Total entries.
    pub modules: usize,
    /// Currently supplied entries.
    pub available: usize,
    /// Entries with generated data examples.
    pub with_examples: usize,
    /// Total data examples stored.
    pub total_examples: usize,
    /// Entries per supply kind.
    pub per_kind: BTreeMap<String, usize>,
    /// Distribution of example-set sizes: size → number of modules.
    pub examples_histogram: BTreeMap<usize, usize>,
}

impl RegistryStats {
    /// Computes statistics for a registry.
    pub fn of(registry: &ModuleRegistry) -> RegistryStats {
        let mut stats = RegistryStats {
            modules: 0,
            available: 0,
            with_examples: 0,
            total_examples: 0,
            per_kind: BTreeMap::new(),
            examples_histogram: BTreeMap::new(),
        };
        for (_, entry) in registry.entries() {
            stats.modules += 1;
            if entry.available {
                stats.available += 1;
            }
            let kind = match entry.descriptor.kind {
                ModuleKind::LocalProgram => "local program",
                ModuleKind::RestService => "rest service",
                ModuleKind::SoapService => "soap service",
            };
            *stats.per_kind.entry(kind.to_string()).or_default() += 1;
            if let Some(examples) = &entry.examples {
                stats.with_examples += 1;
                stats.total_examples += examples.len();
                *stats.examples_histogram.entry(examples.len()).or_default() += 1;
            }
        }
        stats
    }

    /// Mean examples per annotated module; 0.0 when none are annotated.
    pub fn mean_examples(&self) -> f64 {
        if self.with_examples == 0 {
            0.0
        } else {
            self.total_examples as f64 / self.with_examples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::GenerationConfig;
    use dex_pool::build_synthetic_pool;

    #[test]
    fn stats_over_the_annotated_universe() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 9);
        let (registry, _) = crate::annotate_catalog(
            &universe.catalog,
            &universe.ontology,
            &pool,
            &GenerationConfig::default(),
        );
        let stats = RegistryStats::of(&registry);
        assert_eq!(stats.modules, 324);
        assert_eq!(stats.available, 324);
        assert_eq!(stats.with_examples, 324);
        assert!(stats.total_examples > 324, "broad inputs multiply examples");
        assert!(stats.mean_examples() > 1.0);
        // Kind mix approximates the paper's SOAP-heavy corpus.
        assert!(stats.per_kind["soap service"] > stats.per_kind["rest service"]);
        // Most modules have exactly one example (leaf annotations).
        let ones = stats.examples_histogram.get(&1).copied().unwrap_or(0);
        assert!(ones > 150, "{:?}", stats.examples_histogram);
    }

    #[test]
    fn empty_registry_stats() {
        let stats = RegistryStats::of(&ModuleRegistry::new("empty"));
        assert_eq!(stats.modules, 0);
        assert_eq!(stats.mean_examples(), 0.0);
    }
}
