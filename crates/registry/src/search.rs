//! Registry exploration: the "Explore and Understand Modules" face of the
//! architecture (Figure 3, step 3).

use crate::registry::ModuleRegistry;
use dex_core::matching::{map_parameters, MappingMode};
use dex_modules::{ModuleDescriptor, ModuleId};
use dex_ontology::Ontology;

/// A conjunctive search over registry entries.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Case-insensitive substring of the module name.
    pub name_contains: Option<String>,
    /// Some input parameter's concept must be subsumed by this concept.
    pub consumes: Option<String>,
    /// Some output parameter's concept must be subsumed by this concept.
    pub produces: Option<String>,
    /// Restrict to currently supplied modules.
    pub available_only: bool,
}

impl SearchQuery {
    /// Matches everything.
    pub fn any() -> Self {
        SearchQuery::default()
    }

    /// Name filter.
    pub fn named(mut self, fragment: impl Into<String>) -> Self {
        self.name_contains = Some(fragment.into());
        self
    }

    /// Input-concept filter.
    pub fn consuming(mut self, concept: impl Into<String>) -> Self {
        self.consumes = Some(concept.into());
        self
    }

    /// Output-concept filter.
    pub fn producing(mut self, concept: impl Into<String>) -> Self {
        self.produces = Some(concept.into());
        self
    }

    /// Availability filter.
    pub fn available(mut self) -> Self {
        self.available_only = true;
        self
    }

    fn matches(&self, entry: &crate::RegistryEntry, ontology: &Ontology) -> bool {
        if self.available_only && !entry.available {
            return false;
        }
        if let Some(fragment) = &self.name_contains {
            if !entry
                .descriptor
                .name
                .to_lowercase()
                .contains(&fragment.to_lowercase())
            {
                return false;
            }
        }
        let subsumed_by = |param_concept: &str, filter: &str| -> bool {
            match (ontology.id(filter), ontology.id(param_concept)) {
                (Some(f), Some(p)) => ontology.subsumes(f, p),
                _ => false,
            }
        };
        if let Some(concept) = &self.consumes {
            if !entry
                .descriptor
                .inputs
                .iter()
                .any(|p| subsumed_by(&p.semantic, concept))
            {
                return false;
            }
        }
        if let Some(concept) = &self.produces {
            if !entry
                .descriptor
                .outputs
                .iter()
                .any(|p| subsumed_by(&p.semantic, concept))
            {
                return false;
            }
        }
        true
    }
}

/// Runs a query; results come back in id order.
pub fn search<'a>(
    registry: &'a ModuleRegistry,
    query: &SearchQuery,
    ontology: &Ontology,
) -> Vec<(&'a ModuleId, &'a crate::RegistryEntry)> {
    registry
        .entries()
        .filter(|(_, e)| query.matches(e, ontology))
        .collect()
}

/// Finds registered modules whose interface can stand in for `target`'s
/// under the given mapping mode — the candidate-enumeration step of §6
/// repair. Only currently available modules are returned, and the target
/// itself is excluded.
pub fn substitution_candidates<'a>(
    registry: &'a ModuleRegistry,
    target: &ModuleDescriptor,
    ontology: &Ontology,
    mode: MappingMode,
) -> Vec<&'a ModuleId> {
    registry
        .entries()
        .filter(|(id, entry)| {
            **id != target.id
                && entry.available
                && map_parameters(target, &entry.descriptor, ontology, mode).is_ok()
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_values::StructuralType;

    fn descriptor(id: &str, name: &str, input: &str, output: &str) -> ModuleDescriptor {
        ModuleDescriptor::new(
            id,
            name,
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, input)],
            vec![Parameter::required("out", StructuralType::Text, output)],
        )
    }

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor(
            "a",
            "GetRecord",
            "UniprotAccession",
            "UniprotRecord",
        ));
        r.register(descriptor(
            "b",
            "GetSequence",
            "UniprotAccession",
            "ProteinSequence",
        ));
        r.register(descriptor(
            "c",
            "GetAnySequence",
            "DatabaseAccession",
            "BiologicalSequence",
        ));
        r.mark_unavailable(&"b".into());
        r
    }

    #[test]
    fn name_search_is_case_insensitive() {
        let onto = mygrid::ontology();
        let r = registry();
        let hits = search(&r, &SearchQuery::any().named("getrec"), &onto);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, &ModuleId::from("a"));
    }

    #[test]
    fn concept_search_uses_subsumption() {
        let onto = mygrid::ontology();
        let r = registry();
        // Everything consuming any Identifier.
        let hits = search(&r, &SearchQuery::any().consuming("Identifier"), &onto);
        assert_eq!(hits.len(), 3);
        // Producers of biological sequences (b and c).
        let hits = search(
            &r,
            &SearchQuery::any().producing("BiologicalSequence"),
            &onto,
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn availability_filter() {
        let onto = mygrid::ontology();
        let r = registry();
        let hits = search(
            &r,
            &SearchQuery::any()
                .producing("BiologicalSequence")
                .available(),
            &onto,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, &ModuleId::from("c"));
    }

    #[test]
    fn unknown_concept_matches_nothing() {
        let onto = mygrid::ontology();
        let r = registry();
        assert!(search(&r, &SearchQuery::any().consuming("Nope"), &onto).is_empty());
    }

    #[test]
    fn substitution_candidates_by_mode() {
        let onto = mygrid::ontology();
        let r = registry();
        let target = descriptor("t", "Target", "UniprotAccession", "ProteinSequence");
        // Strict: only b matches exactly, but b is unavailable.
        let strict = substitution_candidates(&r, &target, &onto, MappingMode::Strict);
        assert!(strict.is_empty());
        // Subsuming: c accepts the broader domain and its output is
        // subsumption-related.
        let subsuming = substitution_candidates(&r, &target, &onto, MappingMode::Subsuming);
        assert_eq!(subsuming, vec![&ModuleId::from("c")]);
    }
}
