//! Registry storage and persistence.

use dex_core::ExampleSet;
use dex_modules::{ModuleDescriptor, ModuleId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One registry record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryEntry {
    /// The module's annotated interface.
    pub descriptor: ModuleDescriptor,
    /// The data examples characterizing its behavior, once generated.
    pub examples: Option<ExampleSet>,
    /// Whether the provider currently supplies the module. Stale entries
    /// (`false`) are kept: their descriptors and examples drive repair.
    pub available: bool,
}

/// The module registry: a durable map from module id to annotations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModuleRegistry {
    name: String,
    entries: BTreeMap<ModuleId, RegistryEntry>,
}

impl ModuleRegistry {
    /// An empty registry.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleRegistry {
            name: name.into(),
            entries: BTreeMap::new(),
        }
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers (or re-registers) a module's interface. Keeps any examples
    /// already attached when the descriptor is unchanged; a changed
    /// interface invalidates them.
    pub fn register(&mut self, descriptor: ModuleDescriptor) {
        let id = descriptor.id.clone();
        match self.entries.get_mut(&id) {
            Some(entry) if entry.descriptor == descriptor => {
                entry.available = true;
            }
            _ => {
                self.entries.insert(
                    id,
                    RegistryEntry {
                        descriptor,
                        examples: None,
                        available: true,
                    },
                );
            }
        }
    }

    /// Attaches generated data examples to a registered module.
    pub fn attach_examples(&mut self, id: &ModuleId, examples: ExampleSet) -> Result<(), String> {
        let entry = self
            .entries
            .get_mut(id)
            .ok_or_else(|| format!("module {id} is not registered"))?;
        entry.examples = Some(examples);
        Ok(())
    }

    /// Marks an entry as no longer supplied (the registry remembers it).
    pub fn mark_unavailable(&mut self, id: &ModuleId) -> bool {
        match self.entries.get_mut(id) {
            Some(e) => {
                e.available = false;
                true
            }
            None => false,
        }
    }

    /// Looks up an entry.
    pub fn get(&self, id: &ModuleId) -> Option<&RegistryEntry> {
        self.entries.get(id)
    }

    /// Iterates entries in id order.
    pub fn entries(&self) -> impl Iterator<Item = (&ModuleId, &RegistryEntry)> {
        self.entries.iter()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Loads from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<ModuleRegistry> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{ModuleKind, Parameter};
    use dex_values::StructuralType;

    fn descriptor(id: &str, semantic: &str) -> ModuleDescriptor {
        ModuleDescriptor::new(
            id,
            id.to_uppercase(),
            ModuleKind::RestService,
            vec![Parameter::required("in", StructuralType::Text, semantic)],
            vec![Parameter::required("out", StructuralType::Text, semantic)],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor("a", "GOTerm"));
        assert_eq!(r.len(), 1);
        assert!(r.get(&"a".into()).unwrap().available);
        assert!(r.get(&"b".into()).is_none());
    }

    #[test]
    fn attach_examples_requires_registration() {
        let mut r = ModuleRegistry::new("t");
        let set = ExampleSet::new("a".into());
        assert!(r.attach_examples(&"a".into(), set.clone()).is_err());
        r.register(descriptor("a", "GOTerm"));
        assert!(r.attach_examples(&"a".into(), set).is_ok());
        assert!(r.get(&"a".into()).unwrap().examples.is_some());
    }

    #[test]
    fn reregistration_with_same_interface_keeps_examples() {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor("a", "GOTerm"));
        r.attach_examples(&"a".into(), ExampleSet::new("a".into()))
            .unwrap();
        r.mark_unavailable(&"a".into());
        r.register(descriptor("a", "GOTerm"));
        let e = r.get(&"a".into()).unwrap();
        assert!(e.available);
        assert!(e.examples.is_some(), "examples survived");
    }

    #[test]
    fn reregistration_with_new_interface_drops_examples() {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor("a", "GOTerm"));
        r.attach_examples(&"a".into(), ExampleSet::new("a".into()))
            .unwrap();
        r.register(descriptor("a", "ECNumber"));
        assert!(r.get(&"a".into()).unwrap().examples.is_none());
    }

    #[test]
    fn unavailability_is_remembered_not_deleted() {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor("a", "GOTerm"));
        assert!(r.mark_unavailable(&"a".into()));
        assert!(!r.mark_unavailable(&"b".into()));
        let e = r.get(&"a".into()).unwrap();
        assert!(!e.available);
    }

    #[test]
    fn json_round_trip() {
        let mut r = ModuleRegistry::new("t");
        r.register(descriptor("a", "GOTerm"));
        r.register(descriptor("b", "ECNumber"));
        let json = r.to_json().unwrap();
        let back = ModuleRegistry::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.name(), "t");
        assert_eq!(
            back.get(&"a".into()).unwrap().descriptor,
            r.get(&"a".into()).unwrap().descriptor
        );
    }
}
