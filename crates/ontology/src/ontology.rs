//! The arena-backed concept hierarchy and its subsumption queries.

use crate::concept::{Concept, ConceptId};
use crate::error::OntologyError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A domain ontology: a forest of named concepts related by subsumption.
///
/// The paper models an ontology as "a hierarchy of concepts" connected by the
/// subsumption relationship (`ProteinSequence < BiologicalSequence`). This
/// type stores that hierarchy in a flat arena with parent/child adjacency and
/// a name index, so every query the generation heuristic needs —
/// [`partitions_of`](Ontology::partitions_of), [`subsumes`](Ontology::subsumes),
/// realization checks — is an index walk without hashing or allocation on the
/// hot path.
///
/// # Invariants
///
/// * Concept names are unique.
/// * The parent relation is acyclic (enforced at build time: a parent must
///   already exist when its child is added).
/// * `children[p]` lists exactly the concepts whose `parent == Some(p)`, in
///   insertion order (deterministic partition enumeration depends on this).
/// * A concept marked *abstract* (its domain is fully covered by its
///   sub-concepts' domains, so no instance can realize it) is never a leaf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    name: String,
    concepts: Vec<Concept>,
    children: Vec<Vec<ConceptId>>,
    /// `true` for concepts whose domain is covered by their sub-concepts;
    /// such concepts cannot be realized and get no data example of their own.
    abstract_flags: Vec<bool>,
    depths: Vec<u32>,
    /// DFS entry time of each concept (its position in [`preorder`]).
    ///
    /// Together with [`last`], this labels every concept with the interval
    /// `entry[c]..=last[c]` covering exactly its subtree, so subsumption is
    /// an O(1) interval containment test instead of a parent walk. Derived
    /// state: skipped by serde and rebuilt by
    /// [`rebuild_index`](Ontology::rebuild_index).
    #[serde(skip)]
    entry: Vec<u32>,
    /// Largest DFS entry time within each concept's subtree.
    #[serde(skip)]
    last: Vec<u32>,
    /// Concepts in DFS pre-order (roots and children in insertion order):
    /// any subtree is the contiguous slice `preorder[entry[c]..=last[c]]`.
    #[serde(skip)]
    preorder: Vec<ConceptId>,
    #[serde(skip)]
    by_name: HashMap<String, ConceptId>,
}

impl Ontology {
    /// Starts building an ontology with the given name.
    pub fn builder(name: impl Into<String>) -> OntologyBuilder {
        OntologyBuilder::new(name)
    }

    /// The ontology's name (e.g. `"mygrid"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology holds no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Looks up a concept id by its unique name.
    pub fn id(&self, name: &str) -> Option<ConceptId> {
        self.by_name.get(name).copied()
    }

    /// Like [`id`](Ontology::id) but returns an error naming the missing concept.
    pub fn require(&self, name: &str) -> Result<ConceptId, OntologyError> {
        self.id(name)
            .ok_or_else(|| OntologyError::UnknownConcept(name.to_string()))
    }

    /// The concept metadata behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this ontology.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Fallible variant of [`concept`](Ontology::concept).
    pub fn get(&self, id: ConceptId) -> Option<&Concept> {
        self.concepts.get(id.index())
    }

    /// The unique machine name of a concept.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        &self.concepts[id.index()].name
    }

    /// Direct super-concept, or `None` for roots.
    pub fn parent(&self, id: ConceptId) -> Option<ConceptId> {
        self.concepts[id.index()].parent
    }

    /// Direct sub-concepts, in insertion order.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.children[id.index()]
    }

    /// Whether the concept has no sub-concepts.
    pub fn is_leaf(&self, id: ConceptId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// Whether instances can *realize* this concept — i.e. be an instance of
    /// it without being an instance of any strict sub-concept.
    ///
    /// The paper (§3.2): "if it is not possible to have an instance that is a
    /// realization of a concept because its domain is covered by the domains
    /// of its subconcepts, then we do not create a data example for such a
    /// concept". Abstract concepts are exactly those.
    pub fn can_be_realized(&self, id: ConceptId) -> bool {
        !self.abstract_flags[id.index()]
    }

    /// All root concepts (no parent), in insertion order.
    pub fn roots(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.concepts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.parent.is_none())
            .map(|(i, _)| ConceptId::from_index(i))
    }

    /// Iterates every concept id in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len()).map(ConceptId::from_index)
    }

    /// Depth of a concept: 0 for roots, parent depth + 1 otherwise.
    pub fn depth(&self, id: ConceptId) -> u32 {
        self.depths[id.index()]
    }

    /// Iterates `id`, its parent, grand-parent, … up to the root.
    pub fn ancestors(&self, id: ConceptId) -> Ancestors<'_> {
        Ancestors {
            ontology: self,
            next: Some(id),
        }
    }

    /// Whether the DFS interval labels cover the current arena (they are
    /// derived state, absent between deserialization and
    /// [`rebuild_index`](Ontology::rebuild_index)).
    #[inline]
    fn intervals_ready(&self) -> bool {
        self.entry.len() == self.concepts.len()
    }

    /// Non-strict subsumption: does `general` subsume `specific`
    /// (`specific <= general`)?
    ///
    /// Runs in O(1) via DFS interval containment: `general`'s subtree is
    /// exactly the entry-time interval `entry[general]..=last[general]`, so
    /// membership is two integer comparisons. Falls back to the O(depth)
    /// parent walk only when the labels have not been (re)built yet.
    #[inline]
    pub fn subsumes(&self, general: ConceptId, specific: ConceptId) -> bool {
        if self.intervals_ready() {
            let e = self.entry[specific.index()];
            self.entry[general.index()] <= e && e <= self.last[general.index()]
        } else {
            self.subsumes_walk(general, specific)
        }
    }

    /// Walk-based reference implementation of [`subsumes`](Ontology::subsumes):
    /// O(depth) along parent pointers. Kept private as the fallback before
    /// interval labels exist and as the oracle for equivalence tests.
    fn subsumes_walk(&self, general: ConceptId, specific: ConceptId) -> bool {
        let dg = self.depths[general.index()];
        let mut cur = specific;
        while self.depths[cur.index()] > dg {
            // Depth strictly decreases along parent edges, so this terminates.
            cur = match self.concepts[cur.index()].parent {
                Some(p) => p,
                None => return false,
            };
        }
        cur == general
    }

    /// Strict subsumption: `specific < general`.
    #[inline]
    pub fn strictly_subsumes(&self, general: ConceptId, specific: ConceptId) -> bool {
        general != specific && self.subsumes(general, specific)
    }

    /// All concepts subsumed by `root` (including `root` itself), in
    /// deterministic pre-order.
    ///
    /// With interval labels this is a copy of the contiguous pre-order
    /// slice covering `root`'s subtree — O(k) for k descendants, no stack
    /// and no per-node child iteration.
    pub fn descendants(&self, root: ConceptId) -> Vec<ConceptId> {
        if self.intervals_ready() {
            let lo = self.entry[root.index()] as usize;
            let hi = self.last[root.index()] as usize;
            self.preorder[lo..=hi].to_vec()
        } else {
            self.descendants_walk(root)
        }
    }

    /// Walk-based reference implementation of
    /// [`descendants`](Ontology::descendants): explicit-stack DFS. Kept
    /// private as the fallback before interval labels exist and as the
    /// oracle for equivalence tests.
    fn descendants_walk(&self, root: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(c) = stack.pop() {
            out.push(c);
            // Push children reversed so pre-order matches insertion order.
            for &child in self.children[c.index()].iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// The sub-domain partitions of the domain of a parameter annotated with
    /// `concept` (the paper's §3.1).
    ///
    /// These are every concept subsumed by `concept` — the annotation concept
    /// itself plus all of its descendants — *minus* abstract concepts, whose
    /// domains are covered by their sub-concepts and therefore are already
    /// represented by the sub-concepts' partitions.
    pub fn partitions_of(&self, concept: ConceptId) -> Vec<ConceptId> {
        self.descendants(concept)
            .into_iter()
            .filter(|&c| self.can_be_realized(c))
            .collect()
    }

    /// Lowest common ancestor of two concepts, or `None` when they live in
    /// different trees of the forest.
    ///
    /// Fast path: when one argument subsumes the other (an O(1) interval
    /// test) the subsumer is the LCA. Otherwise the answer is the first
    /// ancestor of the shallower-after-leveling argument whose interval
    /// contains the other — one O(1) test per climbed edge instead of the
    /// dual-pointer lock-step walk.
    pub fn lca(&self, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
        if self.intervals_ready() {
            if self.subsumes(a, b) {
                return Some(a);
            }
            let mut cur = a;
            loop {
                cur = self.concepts[cur.index()].parent?;
                if self.subsumes(cur, b) {
                    return Some(cur);
                }
            }
        }
        let (mut a, mut b) = (a, b);
        while self.depths[a.index()] > self.depths[b.index()] {
            a = self.concepts[a.index()].parent?;
        }
        while self.depths[b.index()] > self.depths[a.index()] {
            b = self.concepts[b.index()].parent?;
        }
        while a != b {
            a = self.concepts[a.index()].parent?;
            b = self.concepts[b.index()].parent?;
        }
        Some(a)
    }

    /// Semantic distance: number of subsumption edges on the path between two
    /// concepts through their LCA, or `None` if they are unrelated.
    pub fn distance(&self, a: ConceptId, b: ConceptId) -> Option<u32> {
        let l = self.lca(a, b)?;
        Some(self.depths[a.index()] + self.depths[b.index()] - 2 * self.depths[l.index()])
    }

    /// Validates an id against this ontology.
    pub fn check_id(&self, id: ConceptId) -> Result<ConceptId, OntologyError> {
        if id.index() < self.concepts.len() {
            Ok(id)
        } else {
            Err(OntologyError::ForeignId(id.0))
        }
    }

    /// Rebuilds the derived state skipped by serde: the name index and the
    /// DFS interval labels backing the O(1) subsumption / O(k) descendants
    /// fast paths. Needed after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .concepts
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ConceptId::from_index(i)))
            .collect();
        let (entry, last, preorder) = compute_intervals(&self.concepts, &self.children);
        self.entry = entry;
        self.last = last;
        self.preorder = preorder;
    }

    /// Appends a new *concrete* leaf concept named `name` under `parent` —
    /// the `OntologyEdgeAdd` mutation of the incremental layer's delta
    /// model. The arena is append-only, so every existing [`ConceptId`]
    /// stays valid; only the derived indexes are recomputed. Errors on a
    /// duplicate name or an unknown parent, leaving the ontology untouched.
    pub fn add_child(
        &mut self,
        name: impl Into<String>,
        parent: &str,
    ) -> Result<ConceptId, OntologyError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(OntologyError::DuplicateConcept(name));
        }
        let parent_id = self.require(parent)?;
        let id = ConceptId::from_index(self.concepts.len());
        self.concepts.push(Concept::named(name, Some(parent_id)));
        self.children.push(Vec::new());
        self.children[parent_id.index()].push(id);
        self.abstract_flags.push(false);
        self.depths.push(self.depths[parent_id.index()] + 1);
        self.rebuild_index();
        Ok(id)
    }
}

/// Labels every concept with its DFS entry time and the largest entry time in
/// its subtree, visiting roots and children in insertion order. One global
/// counter runs across the whole forest, so intervals of disjoint trees never
/// overlap and `preorder` matches the historical explicit-stack DFS order.
fn compute_intervals(
    concepts: &[Concept],
    children: &[Vec<ConceptId>],
) -> (Vec<u32>, Vec<u32>, Vec<ConceptId>) {
    let n = concepts.len();
    let mut entry = vec![0u32; n];
    let mut last = vec![0u32; n];
    let mut preorder = Vec::with_capacity(n);
    let mut clock = 0u32;
    let mut stack: Vec<ConceptId> = Vec::new();
    for (i, c) in concepts.iter().enumerate() {
        if c.parent.is_some() {
            continue;
        }
        stack.push(ConceptId::from_index(i));
        while let Some(c) = stack.pop() {
            entry[c.index()] = clock;
            preorder.push(c);
            clock += 1;
            for &child in children[c.index()].iter().rev() {
                stack.push(child);
            }
        }
    }
    // `last[c]` is the max entry time in c's subtree: seed with own entry,
    // then fold children into parents in reverse arena order (children always
    // follow their parents in the arena, so each child's value is final).
    for (i, e) in entry.iter().enumerate() {
        last[i] = *e;
    }
    for i in (0..n).rev() {
        if let Some(p) = concepts[i].parent {
            let li = last[i];
            let lp = &mut last[p.index()];
            if li > *lp {
                *lp = li;
            }
        }
    }
    (entry, last, preorder)
}

/// Iterator over a concept and its ancestors, root-ward.
pub struct Ancestors<'a> {
    ontology: &'a Ontology,
    next: Option<ConceptId>,
}

impl Iterator for Ancestors<'_> {
    type Item = ConceptId;

    fn next(&mut self) -> Option<ConceptId> {
        let cur = self.next?;
        self.next = self.ontology.parent(cur);
        Some(cur)
    }
}

/// Incremental construction of an [`Ontology`].
///
/// Parents must be added before their children, which makes cycles
/// unrepresentable by construction.
#[derive(Debug, Clone)]
pub struct OntologyBuilder {
    name: String,
    concepts: Vec<Concept>,
    abstract_flags: Vec<bool>,
    by_name: HashMap<String, ConceptId>,
}

impl OntologyBuilder {
    /// Creates an empty builder for an ontology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        OntologyBuilder {
            name: name.into(),
            concepts: Vec::new(),
            abstract_flags: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds a root concept.
    pub fn root(&mut self, name: &str) -> Result<ConceptId, OntologyError> {
        self.insert(Concept::named(name, None), false)
    }

    /// Adds a concept under an existing parent.
    pub fn child(&mut self, name: &str, parent: &str) -> Result<ConceptId, OntologyError> {
        let parent_id = self
            .by_name
            .get(parent)
            .copied()
            .ok_or_else(|| OntologyError::UnknownConcept(parent.to_string()))?;
        self.insert(Concept::named(name, Some(parent_id)), false)
    }

    /// Adds a concept under an existing parent and marks it *abstract*: its
    /// domain is fully covered by its (future) sub-concepts, so it cannot be
    /// realized and receives no partition of its own.
    pub fn abstract_child(&mut self, name: &str, parent: &str) -> Result<ConceptId, OntologyError> {
        let parent_id = self
            .by_name
            .get(parent)
            .copied()
            .ok_or_else(|| OntologyError::UnknownConcept(parent.to_string()))?;
        self.insert(Concept::named(name, Some(parent_id)), true)
    }

    /// Adds an abstract root concept.
    pub fn abstract_root(&mut self, name: &str) -> Result<ConceptId, OntologyError> {
        self.insert(Concept::named(name, None), true)
    }

    /// Sets the description of an already-added concept.
    pub fn describe(&mut self, name: &str, description: &str) -> Result<(), OntologyError> {
        let id = self
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| OntologyError::UnknownConcept(name.to_string()))?;
        self.concepts[id.index()].description = description.to_string();
        Ok(())
    }

    fn insert(&mut self, concept: Concept, is_abstract: bool) -> Result<ConceptId, OntologyError> {
        if self.by_name.contains_key(&concept.name) {
            return Err(OntologyError::DuplicateConcept(concept.name));
        }
        let id = ConceptId::from_index(self.concepts.len());
        self.by_name.insert(concept.name.clone(), id);
        self.concepts.push(concept);
        self.abstract_flags.push(is_abstract);
        Ok(id)
    }

    /// Finalizes the ontology.
    ///
    /// Fails if any abstract concept ended up a leaf (an abstract leaf would
    /// denote an empty domain, which the paper's model has no use for).
    pub fn build(self) -> Result<Ontology, OntologyError> {
        let n = self.concepts.len();
        let mut children: Vec<Vec<ConceptId>> = vec![Vec::new(); n];
        let mut depths = vec![0u32; n];
        for (i, c) in self.concepts.iter().enumerate() {
            if let Some(p) = c.parent {
                children[p.index()].push(ConceptId::from_index(i));
                // Parents precede children in the arena, so depths[p] is final.
                depths[i] = depths[p.index()] + 1;
            }
        }
        for (i, &is_abstract) in self.abstract_flags.iter().enumerate() {
            if is_abstract && children[i].is_empty() {
                return Err(OntologyError::UnknownConcept(format!(
                    "abstract concept `{}` has no sub-concepts (its domain would be empty)",
                    self.concepts[i].name
                )));
            }
        }
        let (entry, last, preorder) = compute_intervals(&self.concepts, &children);
        Ok(Ontology {
            name: self.name,
            concepts: self.concepts,
            children,
            abstract_flags: self.abstract_flags,
            depths,
            entry,
            last,
            preorder,
            by_name: self.by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BioData > {BiologicalSequence > {NucleotideSequence > {DNA, RNA},
    /// ProteinSequence}, Accession}
    fn sample() -> Ontology {
        let mut b = Ontology::builder("test");
        b.root("BioData").unwrap();
        b.child("BiologicalSequence", "BioData").unwrap();
        b.abstract_child("NucleotideSequence", "BiologicalSequence")
            .unwrap();
        b.child("DNASequence", "NucleotideSequence").unwrap();
        b.child("RNASequence", "NucleotideSequence").unwrap();
        b.child("ProteinSequence", "BiologicalSequence").unwrap();
        b.child("Accession", "BioData").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn name_lookup_round_trips() {
        let o = sample();
        for id in o.iter() {
            assert_eq!(o.id(o.concept_name(id)), Some(id));
        }
        assert_eq!(o.id("Nope"), None);
        assert!(o.require("Nope").is_err());
    }

    #[test]
    fn subsumption_is_reflexive_and_follows_edges() {
        let o = sample();
        let bio = o.id("BiologicalSequence").unwrap();
        let dna = o.id("DNASequence").unwrap();
        let prot = o.id("ProteinSequence").unwrap();
        assert!(o.subsumes(bio, bio));
        assert!(o.subsumes(bio, dna));
        assert!(!o.subsumes(dna, bio));
        assert!(!o.subsumes(prot, dna));
        assert!(o.strictly_subsumes(bio, dna));
        assert!(!o.strictly_subsumes(bio, bio));
    }

    #[test]
    fn partitions_exclude_abstract_concepts() {
        let o = sample();
        let bio = o.id("BiologicalSequence").unwrap();
        let parts: Vec<&str> = o
            .partitions_of(bio)
            .into_iter()
            .map(|c| o.concept_name(c))
            .collect();
        // NucleotideSequence is abstract, covered by DNA + RNA.
        assert_eq!(
            parts,
            vec![
                "BiologicalSequence",
                "DNASequence",
                "RNASequence",
                "ProteinSequence"
            ]
        );
    }

    #[test]
    fn descendants_are_preorder_and_complete() {
        let o = sample();
        let root = o.id("BioData").unwrap();
        let d = o.descendants(root);
        assert_eq!(d.len(), o.len());
        assert_eq!(d[0], root);
        // Every descendant is subsumed by the root.
        assert!(d.iter().all(|&c| o.subsumes(root, c)));
    }

    #[test]
    fn add_child_matches_builder_built_ontology() {
        // Growing the sample with a live edge must be observationally
        // identical to having built the larger ontology from scratch.
        let mut grown = sample();
        let id = grown
            .add_child("XNASequence", "NucleotideSequence")
            .unwrap();
        assert_eq!(grown.concept_name(id), "XNASequence");

        let mut b = Ontology::builder("test");
        b.root("BioData").unwrap();
        b.child("BiologicalSequence", "BioData").unwrap();
        b.abstract_child("NucleotideSequence", "BiologicalSequence")
            .unwrap();
        b.child("DNASequence", "NucleotideSequence").unwrap();
        b.child("RNASequence", "NucleotideSequence").unwrap();
        b.child("ProteinSequence", "BiologicalSequence").unwrap();
        b.child("Accession", "BioData").unwrap();
        b.child("XNASequence", "NucleotideSequence").unwrap();
        let fresh = b.build().unwrap();

        assert_eq!(grown.len(), fresh.len());
        for a in grown.iter() {
            let fa = fresh.id(grown.concept_name(a)).unwrap();
            assert_eq!(grown.depth(a), fresh.depth(fa));
            let gp: Vec<&str> = grown
                .partitions_of(a)
                .into_iter()
                .map(|c| grown.concept_name(c))
                .collect();
            let fp: Vec<&str> = fresh
                .partitions_of(fa)
                .into_iter()
                .map(|c| fresh.concept_name(c))
                .collect();
            assert_eq!(gp, fp);
            for b in grown.iter() {
                let fb = fresh.id(grown.concept_name(b)).unwrap();
                assert_eq!(grown.subsumes(a, b), fresh.subsumes(fa, fb));
            }
        }

        // Error paths: duplicate names and unknown parents are rejected.
        assert!(matches!(
            grown.add_child("DNASequence", "BioData"),
            Err(OntologyError::DuplicateConcept(_))
        ));
        assert!(grown.add_child("YNASequence", "Nope").is_err());
    }

    #[test]
    fn depth_and_ancestors_agree() {
        let o = sample();
        let dna = o.id("DNASequence").unwrap();
        assert_eq!(o.depth(dna), 3);
        let chain: Vec<&str> = o.ancestors(dna).map(|c| o.concept_name(c)).collect();
        assert_eq!(
            chain,
            vec![
                "DNASequence",
                "NucleotideSequence",
                "BiologicalSequence",
                "BioData"
            ]
        );
    }

    #[test]
    fn lca_and_distance() {
        let o = sample();
        let dna = o.id("DNASequence").unwrap();
        let rna = o.id("RNASequence").unwrap();
        let prot = o.id("ProteinSequence").unwrap();
        let acc = o.id("Accession").unwrap();
        assert_eq!(o.lca(dna, rna), o.id("NucleotideSequence"));
        assert_eq!(o.lca(dna, prot), o.id("BiologicalSequence"));
        assert_eq!(o.lca(dna, acc), o.id("BioData"));
        assert_eq!(o.distance(dna, rna), Some(2));
        assert_eq!(o.distance(dna, dna), Some(0));
        assert_eq!(o.distance(dna, prot), Some(3));
    }

    #[test]
    fn lca_in_disjoint_trees_is_none() {
        let mut b = Ontology::builder("forest");
        b.root("A").unwrap();
        b.root("B").unwrap();
        let o = b.build().unwrap();
        let a = o.id("A").unwrap();
        let bb = o.id("B").unwrap();
        assert_eq!(o.lca(a, bb), None);
        assert_eq!(o.distance(a, bb), None);
        assert!(!o.subsumes(a, bb));
        assert_eq!(o.roots().count(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = Ontology::builder("t");
        b.root("A").unwrap();
        assert_eq!(
            b.root("A"),
            Err(OntologyError::DuplicateConcept("A".into()))
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = Ontology::builder("t");
        assert!(matches!(
            b.child("X", "Missing"),
            Err(OntologyError::UnknownConcept(_))
        ));
    }

    #[test]
    fn abstract_leaf_rejected_at_build() {
        let mut b = Ontology::builder("t");
        b.abstract_root("A").unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn foreign_id_detected() {
        let o = sample();
        assert!(o.check_id(ConceptId::from_index(999)).is_err());
        assert!(o.check_id(ConceptId::from_index(0)).is_ok());
    }

    #[test]
    fn describe_attaches_description() {
        let mut b = Ontology::builder("t");
        b.root("A").unwrap();
        b.describe("A", "the root of everything").unwrap();
        assert!(b.describe("Z", "nope").is_err());
        let o = b.build().unwrap();
        let a = o.id("A").unwrap();
        assert_eq!(o.concept(a).description, "the root of everything");
    }

    #[test]
    fn serde_round_trip_preserves_queries_after_reindex() {
        let o = sample();
        let json = serde_json::to_string(&o).unwrap();
        let mut back: Ontology = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        let bio = back.id("BiologicalSequence").unwrap();
        let dna = back.id("DNASequence").unwrap();
        assert!(back.subsumes(bio, dna));
        assert_eq!(back.len(), o.len());
    }

    #[test]
    fn interval_labels_agree_with_walks_on_sample() {
        let o = sample();
        assert!(o.intervals_ready());
        for a in o.iter() {
            assert_eq!(o.descendants(a), o.descendants_walk(a), "descendants");
            for b in o.iter() {
                assert_eq!(
                    o.subsumes(a, b),
                    o.subsumes_walk(a, b),
                    "subsumes({}, {})",
                    o.concept_name(a),
                    o.concept_name(b)
                );
            }
        }
    }

    #[test]
    fn deserialized_ontology_answers_before_and_after_reindex() {
        // Queries must be correct in the walk-fallback window between
        // deserialization and rebuild_index, and identical afterwards.
        let o = sample();
        let json = serde_json::to_string(&o).unwrap();
        let mut back: Ontology = serde_json::from_str(&json).unwrap();
        assert!(!back.intervals_ready());
        let answers_before: Vec<bool> = o
            .iter()
            .flat_map(|a| o.iter().map(move |b| (a, b)))
            .map(|(a, b)| back.subsumes(a, b))
            .collect();
        back.rebuild_index();
        assert!(back.intervals_ready());
        let answers_after: Vec<bool> = o
            .iter()
            .flat_map(|a| o.iter().map(move |b| (a, b)))
            .map(|(a, b)| back.subsumes(a, b))
            .collect();
        assert_eq!(answers_before, answers_after);
        for id in o.iter() {
            assert_eq!(back.descendants(id), o.descendants(id));
        }
    }

    #[test]
    fn intervals_cover_forest_disjointly() {
        let mut b = Ontology::builder("forest");
        b.root("A").unwrap();
        b.child("A1", "A").unwrap();
        b.root("B").unwrap();
        b.child("B1", "B").unwrap();
        b.child("B2", "B").unwrap();
        let o = b.build().unwrap();
        let a = o.id("A").unwrap();
        let bb = o.id("B").unwrap();
        // One global clock across trees: every concept has a unique entry
        // time and the two root intervals do not overlap.
        assert_eq!(o.descendants(a).len(), 2);
        assert_eq!(o.descendants(bb).len(), 3);
        assert!(!o.subsumes(a, bb) && !o.subsumes(bb, a));
        for x in o.descendants(a) {
            for y in o.descendants(bb) {
                assert!(!o.subsumes(x, y) && !o.subsumes(y, x));
            }
        }
    }
}
