//! A myGrid-like life-science domain ontology.
//!
//! The paper annotates its 252 modules with the myGrid ontology (Figure 4
//! shows the `BiologicalSequence` fragment). The original OWL ontology is not
//! redistributable here, so this module ships a faithful reconstruction of
//! the fragments the paper exercises: sequences, database accessions,
//! database records, analysis reports, documents, configuration parameters
//! and mass-spectrometry data.
//!
//! The ontology is defined in the crate's own [text format](crate::text) and
//! parsed at construction time, which doubles as an integration test of the
//! parser.

use crate::ontology::Ontology;
use crate::text;

/// The text-format source of the ontology. Public so tools can display it.
pub const MYGRID_TEXT: &str = "\
ontology mygrid
BioinformaticsData: root of all annotated life-science data
  BiologicalSequence: a sequence of residues
    NucleotideSequence [abstract]: nucleic-acid sequences, covered by DNA and RNA
      DNASequence: deoxyribonucleic acid sequence
      RNASequence: ribonucleic acid sequence
    ProteinSequence: amino-acid sequence
  Identifier: a symbolic name for a biological entity
    DatabaseAccession: an accession in some molecular database
      UniprotAccession: Uniprot protein accession, e.g. P12345
      PDBAccession: Protein Data Bank accession
      EMBLAccession: EMBL nucleotide accession
      GenBankAccession: GenBank nucleotide accession
      KEGGAccession [abstract]: KEGG identifiers, covered by the entry kinds
        KEGGGeneId: KEGG gene identifier
        KEGGPathwayId: KEGG pathway identifier
        KEGGCompoundId: KEGG compound identifier
        KEGGEnzymeId: KEGG enzyme identifier
      GlycanAccession: KEGG glycan accession
      LigandAccession: ligand database accession
    OntologyTerm: a term from a bio-ontology
      GOTerm: Gene Ontology term
      ECNumber: enzyme commission number
    GeneIdentifier: identifier of a gene
      EntrezGeneId: NCBI Entrez gene id
      EnsemblGeneId: Ensembl gene id
      GeneSymbol: HGNC-style gene symbol
  BiologicalRecord [abstract]: structured database entries
    SequenceRecord: a record describing a sequence
      UniprotRecord: Uniprot flat-file protein record
      FastaRecord: FASTA-formatted sequence record
      GenBankRecord: GenBank flat-file record
      EMBLRecord: EMBL flat-file record
      PDBRecord: PDB structure record
    PathwayRecord: a pathway database entry
    EnzymeRecord: an enzyme database entry
    CompoundRecord: a small-molecule entry
    GlycanRecord: KEGG glycan entry
    LigandRecord: ligand database entry
    GeneRecord: a gene database entry
  Report: the output of an analysis
    AlignmentReport: result of a sequence alignment search
      BlastReport: BLAST alignment report
      FastaAlignmentReport: FASTA-program alignment report
    IdentificationReport: protein/peptide identification result
    PhylogeneticTree: result of a phylogenetic analysis
    AnnotationReport: functional annotation summary
  Document: natural-language content
    LiteratureAbstract: abstract of a publication
    FullTextArticle: full text of a publication
  AnnotationData: derived semantic annotations
    PathwayConcept: pathway concept extracted from text
    FunctionalCategory: coarse functional category
    KeywordSet: curated keyword list
    CrossReferenceSet: cross-references to other databases
  Setting [abstract]: configuration values supplied to modules
    ErrorTolerance: identification error tolerance (percentage)
    AlgorithmName: name of an algorithm to apply
    DatabaseName: name of a target database
    ScoreThreshold: numeric score cut-off
    EValueCutoff: alignment e-value cut-off
  MeasurementData: raw experimental measurements
    PeptideMassList: peptide masses from mass-spectrometric analysis
    MassSpectrum: a raw mass spectrum
    ExpressionProfile: gene-expression measurements
";

/// Builds the myGrid-like ontology.
///
/// # Panics
/// Never panics in practice: the embedded text is validated by this crate's
/// tests; a parse failure here would be a build defect of the library itself.
pub fn ontology() -> Ontology {
    text::parse(MYGRID_TEXT).expect("embedded myGrid ontology must parse")
}

/// Names of the myGrid-like concepts, for typo-proof reference downstream.
pub mod names {
    pub const BIOINFORMATICS_DATA: &str = "BioinformaticsData";
    pub const BIOLOGICAL_SEQUENCE: &str = "BiologicalSequence";
    pub const NUCLEOTIDE_SEQUENCE: &str = "NucleotideSequence";
    pub const DNA_SEQUENCE: &str = "DNASequence";
    pub const RNA_SEQUENCE: &str = "RNASequence";
    pub const PROTEIN_SEQUENCE: &str = "ProteinSequence";
    pub const IDENTIFIER: &str = "Identifier";
    pub const DATABASE_ACCESSION: &str = "DatabaseAccession";
    pub const UNIPROT_ACCESSION: &str = "UniprotAccession";
    pub const PDB_ACCESSION: &str = "PDBAccession";
    pub const EMBL_ACCESSION: &str = "EMBLAccession";
    pub const GENBANK_ACCESSION: &str = "GenBankAccession";
    pub const KEGG_ACCESSION: &str = "KEGGAccession";
    pub const KEGG_GENE_ID: &str = "KEGGGeneId";
    pub const KEGG_PATHWAY_ID: &str = "KEGGPathwayId";
    pub const KEGG_COMPOUND_ID: &str = "KEGGCompoundId";
    pub const KEGG_ENZYME_ID: &str = "KEGGEnzymeId";
    pub const GLYCAN_ACCESSION: &str = "GlycanAccession";
    pub const LIGAND_ACCESSION: &str = "LigandAccession";
    pub const ONTOLOGY_TERM: &str = "OntologyTerm";
    pub const GO_TERM: &str = "GOTerm";
    pub const EC_NUMBER: &str = "ECNumber";
    pub const GENE_IDENTIFIER: &str = "GeneIdentifier";
    pub const ENTREZ_GENE_ID: &str = "EntrezGeneId";
    pub const ENSEMBL_GENE_ID: &str = "EnsemblGeneId";
    pub const GENE_SYMBOL: &str = "GeneSymbol";
    pub const BIOLOGICAL_RECORD: &str = "BiologicalRecord";
    pub const SEQUENCE_RECORD: &str = "SequenceRecord";
    pub const UNIPROT_RECORD: &str = "UniprotRecord";
    pub const FASTA_RECORD: &str = "FastaRecord";
    pub const GENBANK_RECORD: &str = "GenBankRecord";
    pub const EMBL_RECORD: &str = "EMBLRecord";
    pub const PDB_RECORD: &str = "PDBRecord";
    pub const PATHWAY_RECORD: &str = "PathwayRecord";
    pub const ENZYME_RECORD: &str = "EnzymeRecord";
    pub const COMPOUND_RECORD: &str = "CompoundRecord";
    pub const GLYCAN_RECORD: &str = "GlycanRecord";
    pub const LIGAND_RECORD: &str = "LigandRecord";
    pub const GENE_RECORD: &str = "GeneRecord";
    pub const REPORT: &str = "Report";
    pub const ALIGNMENT_REPORT: &str = "AlignmentReport";
    pub const BLAST_REPORT: &str = "BlastReport";
    pub const FASTA_ALIGNMENT_REPORT: &str = "FastaAlignmentReport";
    pub const IDENTIFICATION_REPORT: &str = "IdentificationReport";
    pub const PHYLOGENETIC_TREE: &str = "PhylogeneticTree";
    pub const ANNOTATION_REPORT: &str = "AnnotationReport";
    pub const DOCUMENT: &str = "Document";
    pub const LITERATURE_ABSTRACT: &str = "LiteratureAbstract";
    pub const FULL_TEXT_ARTICLE: &str = "FullTextArticle";
    pub const ANNOTATION_DATA: &str = "AnnotationData";
    pub const PATHWAY_CONCEPT: &str = "PathwayConcept";
    pub const FUNCTIONAL_CATEGORY: &str = "FunctionalCategory";
    pub const KEYWORD_SET: &str = "KeywordSet";
    pub const CROSS_REFERENCE_SET: &str = "CrossReferenceSet";
    pub const SETTING: &str = "Setting";
    pub const ERROR_TOLERANCE: &str = "ErrorTolerance";
    pub const ALGORITHM_NAME: &str = "AlgorithmName";
    pub const DATABASE_NAME: &str = "DatabaseName";
    pub const SCORE_THRESHOLD: &str = "ScoreThreshold";
    pub const E_VALUE_CUTOFF: &str = "EValueCutoff";
    pub const MEASUREMENT_DATA: &str = "MeasurementData";
    pub const PEPTIDE_MASS_LIST: &str = "PeptideMassList";
    pub const MASS_SPECTRUM: &str = "MassSpectrum";
    pub const EXPRESSION_PROFILE: &str = "ExpressionProfile";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_parses_and_has_expected_size() {
        let o = ontology();
        assert_eq!(o.name(), "mygrid");
        assert!(o.len() > 55, "got {} concepts", o.len());
        assert_eq!(o.roots().count(), 1);
    }

    #[test]
    fn every_names_constant_resolves() {
        let o = ontology();
        let all = [
            names::BIOINFORMATICS_DATA,
            names::BIOLOGICAL_SEQUENCE,
            names::NUCLEOTIDE_SEQUENCE,
            names::DNA_SEQUENCE,
            names::RNA_SEQUENCE,
            names::PROTEIN_SEQUENCE,
            names::IDENTIFIER,
            names::DATABASE_ACCESSION,
            names::UNIPROT_ACCESSION,
            names::PDB_ACCESSION,
            names::EMBL_ACCESSION,
            names::GENBANK_ACCESSION,
            names::KEGG_ACCESSION,
            names::KEGG_GENE_ID,
            names::KEGG_PATHWAY_ID,
            names::KEGG_COMPOUND_ID,
            names::KEGG_ENZYME_ID,
            names::GLYCAN_ACCESSION,
            names::LIGAND_ACCESSION,
            names::ONTOLOGY_TERM,
            names::GO_TERM,
            names::EC_NUMBER,
            names::GENE_IDENTIFIER,
            names::ENTREZ_GENE_ID,
            names::ENSEMBL_GENE_ID,
            names::GENE_SYMBOL,
            names::BIOLOGICAL_RECORD,
            names::SEQUENCE_RECORD,
            names::UNIPROT_RECORD,
            names::FASTA_RECORD,
            names::GENBANK_RECORD,
            names::EMBL_RECORD,
            names::PDB_RECORD,
            names::PATHWAY_RECORD,
            names::ENZYME_RECORD,
            names::COMPOUND_RECORD,
            names::GLYCAN_RECORD,
            names::LIGAND_RECORD,
            names::GENE_RECORD,
            names::REPORT,
            names::ALIGNMENT_REPORT,
            names::BLAST_REPORT,
            names::FASTA_ALIGNMENT_REPORT,
            names::IDENTIFICATION_REPORT,
            names::PHYLOGENETIC_TREE,
            names::ANNOTATION_REPORT,
            names::DOCUMENT,
            names::LITERATURE_ABSTRACT,
            names::FULL_TEXT_ARTICLE,
            names::ANNOTATION_DATA,
            names::PATHWAY_CONCEPT,
            names::FUNCTIONAL_CATEGORY,
            names::KEYWORD_SET,
            names::CROSS_REFERENCE_SET,
            names::SETTING,
            names::ERROR_TOLERANCE,
            names::ALGORITHM_NAME,
            names::DATABASE_NAME,
            names::SCORE_THRESHOLD,
            names::E_VALUE_CUTOFF,
            names::MEASUREMENT_DATA,
            names::PEPTIDE_MASS_LIST,
            names::MASS_SPECTRUM,
            names::EXPRESSION_PROFILE,
        ];
        for name in all {
            assert!(o.id(name).is_some(), "missing concept {name}");
        }
        assert_eq!(all.len(), o.len(), "names module out of sync with text");
    }

    #[test]
    fn figure4_fragment_matches_paper() {
        // The paper's Figure 4 / Example 3: partitioning BiologicalSequence
        // yields BiologicalSequence, NucleotideSequence, RNASequence,
        // DNASequence, ProteinSequence — except that our NucleotideSequence is
        // abstract (DNA + RNA cover it), so it contributes no partition.
        let o = ontology();
        let bio = o.id(names::BIOLOGICAL_SEQUENCE).unwrap();
        let parts: Vec<&str> = o
            .partitions_of(bio)
            .iter()
            .map(|&c| o.concept_name(c))
            .collect();
        assert_eq!(
            parts,
            vec![
                "BiologicalSequence",
                "DNASequence",
                "RNASequence",
                "ProteinSequence"
            ]
        );
    }

    #[test]
    fn abstract_concepts_are_exactly_the_marked_ones() {
        let o = ontology();
        let abstracts: Vec<&str> = o
            .iter()
            .filter(|&c| !o.can_be_realized(c))
            .map(|c| o.concept_name(c))
            .collect();
        assert_eq!(
            abstracts,
            vec![
                "NucleotideSequence",
                "KEGGAccession",
                "BiologicalRecord",
                "Setting"
            ]
        );
    }

    #[test]
    fn kegg_ids_partition_under_database_accession() {
        let o = ontology();
        let acc = o.id(names::DATABASE_ACCESSION).unwrap();
        let parts = o.partitions_of(acc);
        // 1 (itself) + 4 concrete accessions + 4 KEGG kinds + glycan + ligand.
        assert_eq!(parts.len(), 11);
    }
}
