//! A small line-oriented text format for ontologies.
//!
//! The format is indentation-based, two spaces per level, mirroring how
//! ontology fragments are presented in the paper (Figure 4):
//!
//! ```text
//! ontology mygrid
//! BioData
//!   BiologicalSequence
//!     NucleotideSequence [abstract]
//!       DNASequence: deoxyribonucleic acid sequence
//!       RNASequence
//!     ProteinSequence
//!   Accession
//! ```
//!
//! * `# …` lines and blank lines are ignored.
//! * A trailing `[abstract]` marks a concept whose domain is covered by its
//!   sub-concepts (no realization possible).
//! * An optional `: description` attaches free text.

use crate::error::OntologyError;
use crate::ontology::{Ontology, OntologyBuilder};

/// Parses an ontology from its text representation.
pub fn parse(input: &str) -> Result<Ontology, OntologyError> {
    let mut lines = input.lines().enumerate().peekable();

    // Header.
    let mut name = String::from("ontology");
    while let Some(&(_, line)) = lines.peek() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            lines.next();
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("ontology ") {
            name = rest.trim().to_string();
            lines.next();
        }
        break;
    }

    let mut builder = OntologyBuilder::new(name);
    // Stack of (indent level, concept name) for the current root-to-leaf path.
    let mut stack: Vec<(usize, String)> = Vec::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let trimmed_end = raw.trim_end();
        if trimmed_end.trim().is_empty() || trimmed_end.trim().starts_with('#') {
            continue;
        }
        let indent_chars = trimmed_end.len() - trimmed_end.trim_start().len();
        if indent_chars % 2 != 0 {
            return Err(OntologyError::Parse {
                line: line_no,
                message: "indentation must be a multiple of two spaces".into(),
            });
        }
        if trimmed_end.trim_start().starts_with('\t') || raw.contains('\t') {
            return Err(OntologyError::Parse {
                line: line_no,
                message: "tabs are not allowed; indent with spaces".into(),
            });
        }
        let level = indent_chars / 2;

        let body = trimmed_end.trim_start();
        let (decl, description) = match body.split_once(':') {
            Some((d, desc)) => (d.trim(), Some(desc.trim())),
            None => (body, None),
        };
        let (concept_name, is_abstract) = match decl.strip_suffix("[abstract]") {
            Some(n) => (n.trim(), true),
            None => (decl, false),
        };
        if concept_name.is_empty() || concept_name.contains(char::is_whitespace) {
            return Err(OntologyError::Parse {
                line: line_no,
                message: format!("invalid concept name `{concept_name}`"),
            });
        }

        // Pop to the parent level.
        while stack.last().is_some_and(|&(l, _)| l >= level) {
            stack.pop();
        }
        match (level, stack.last()) {
            (0, _) => {
                if is_abstract {
                    builder.abstract_root(concept_name)
                } else {
                    builder.root(concept_name)
                }
                .map_err(|e| OntologyError::Parse {
                    line: line_no,
                    message: e.to_string(),
                })?;
            }
            (_, Some((parent_level, parent))) if *parent_level == level - 1 => {
                let parent = parent.clone();
                if is_abstract {
                    builder.abstract_child(concept_name, &parent)
                } else {
                    builder.child(concept_name, &parent)
                }
                .map_err(|e| OntologyError::Parse {
                    line: line_no,
                    message: e.to_string(),
                })?;
            }
            _ => {
                return Err(OntologyError::Parse {
                    line: line_no,
                    message: format!("indentation jumps to level {level} with no parent"),
                });
            }
        }
        if let Some(desc) = description {
            if !desc.is_empty() {
                builder.describe(concept_name, desc).expect("just inserted");
            }
        }
        stack.push((level, concept_name.to_string()));
    }

    builder.build()
}

/// Serializes an ontology to the text format; `parse` round-trips it.
pub fn render(ontology: &Ontology) -> String {
    let mut out = format!("ontology {}\n", ontology.name());
    for root in ontology.roots() {
        render_subtree(ontology, root, 0, &mut out);
    }
    out
}

fn render_subtree(o: &Ontology, id: crate::ConceptId, level: usize, out: &mut String) {
    let c = o.concept(id);
    for _ in 0..level {
        out.push_str("  ");
    }
    out.push_str(&c.name);
    if !o.can_be_realized(id) {
        out.push_str(" [abstract]");
    }
    if !c.description.is_empty() {
        out.push_str(": ");
        out.push_str(&c.description);
    }
    out.push('\n');
    for &child in o.children(id) {
        render_subtree(o, child, level + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
ontology demo
BioData
  BiologicalSequence
    NucleotideSequence [abstract]
      DNASequence: deoxyribonucleic acid
      RNASequence
    ProteinSequence
  Accession
";

    #[test]
    fn parses_sample() {
        let o = parse(SAMPLE).unwrap();
        assert_eq!(o.name(), "demo");
        assert_eq!(o.len(), 7);
        let nuc = o.id("NucleotideSequence").unwrap();
        assert!(!o.can_be_realized(nuc));
        let dna = o.id("DNASequence").unwrap();
        assert_eq!(o.concept(dna).description, "deoxyribonucleic acid");
        assert_eq!(o.parent(dna), Some(nuc));
    }

    #[test]
    fn round_trips_through_render() {
        let o = parse(SAMPLE).unwrap();
        let text = render(&o);
        let o2 = parse(&text).unwrap();
        assert_eq!(o2.len(), o.len());
        for id in o.iter() {
            let name = o.concept_name(id);
            let id2 = o2.id(name).unwrap();
            assert_eq!(
                o.parent(id).map(|p| o.concept_name(p)),
                o2.parent(id2).map(|p| o2.concept_name(p))
            );
            assert_eq!(o.can_be_realized(id), o2.can_be_realized(id2));
        }
    }

    #[test]
    fn rejects_odd_indentation() {
        let err = parse("A\n   B\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_indentation_jump() {
        let err = parse("A\n    B\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_tabs() {
        let err = parse("A\n\tB\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { .. }));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = parse("A\nA\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_names_with_spaces() {
        let err = parse("A\n  B C\n").unwrap_err();
        assert!(matches!(err, OntologyError::Parse { line: 2, .. }));
    }

    #[test]
    fn missing_header_defaults_name() {
        let o = parse("A\n").unwrap();
        assert_eq!(o.name(), "ontology");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn multiple_roots_supported() {
        let o = parse("A\nB\n  C\n").unwrap();
        assert_eq!(o.roots().count(), 2);
        assert_eq!(o.parent(o.id("C").unwrap()), o.id("B"));
    }
}
