//! Graphviz (DOT) export of ontologies, for documentation and debugging.

use crate::ontology::Ontology;

/// Renders the ontology as a Graphviz digraph: one node per concept,
/// subsumption edges parent → child, abstract concepts drawn dashed.
pub fn to_dot(ontology: &Ontology) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(ontology.name())));
    out.push_str("  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for id in ontology.iter() {
        let concept = ontology.concept(id);
        let style = if ontology.can_be_realized(id) {
            "solid"
        } else {
            "dashed"
        };
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\", style={style}];\n",
            escape(&concept.name),
            escape(&concept.name),
        ));
    }
    for id in ontology.iter() {
        if let Some(parent) = ontology.parent(id) {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                escape(ontology.concept_name(parent)),
                escape(ontology.concept_name(id)),
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mygrid;

    #[test]
    fn dot_contains_every_concept_and_edge() {
        let onto = mygrid::ontology();
        let dot = to_dot(&onto);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        for id in onto.iter() {
            assert!(dot.contains(onto.concept_name(id)));
        }
        // One edge per non-root concept.
        let edges = dot.matches(" -> ").count();
        let non_roots = onto.iter().filter(|&c| onto.parent(c).is_some()).count();
        assert_eq!(edges, non_roots);
    }

    #[test]
    fn abstract_concepts_are_dashed() {
        let onto = mygrid::ontology();
        let dot = to_dot(&onto);
        assert!(dot.contains("\"NucleotideSequence\" [label=\"NucleotideSequence\", style=dashed]"));
        assert!(dot.contains("\"DNASequence\" [label=\"DNASequence\", style=solid]"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = Ontology::builder("t\"x");
        b.root("A").unwrap();
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("t\\\"x"));
    }
}
