//! # dex-ontology
//!
//! Concept hierarchies ("domain ontologies") used for the semantic annotation
//! of scientific-module parameters, in the style of the myGrid ontology the
//! paper uses for its 252 life-science modules.
//!
//! The paper's generation heuristic (its §3) only ever consumes three pieces
//! of ontological information, and this crate is organized around them:
//!
//! 1. **Subsumption** — `c < c'` ("c is a strict sub-concept of c'"), used to
//!    partition the domain of an annotated parameter into the sub-domains
//!    subsumed by its semantic type ([`Ontology::partitions_of`]).
//! 2. **Realization** — an instance *realizes* a concept `c` when it is an
//!    instance of `c` but of none of `c`'s strict sub-concepts; partition
//!    coverage is defined in terms of realizations
//!    ([`Ontology::can_be_realized`] and the pool crate).
//! 3. **Concept identity** — stable ids and human-readable names so that
//!    annotations, data examples and registries can refer to concepts.
//!
//! The crate provides an interned, arena-backed [`Ontology`] with cheap
//! [`ConceptId`] handles, a builder, reachability/LCA queries, a small
//! line-oriented text format ([`text`]), and a generated myGrid-like
//! life-science ontology ([`mygrid`]).
//!
//! ```
//! use dex_ontology::Ontology;
//!
//! let mut builder = Ontology::builder("demo");
//! builder.root("Sequence").unwrap();
//! builder.child("DNA", "Sequence").unwrap();
//! builder.child("Protein", "Sequence").unwrap();
//! let onto = builder.build().unwrap();
//!
//! let sequence = onto.id("Sequence").unwrap();
//! let dna = onto.id("DNA").unwrap();
//! assert!(onto.subsumes(sequence, dna));
//! assert_eq!(onto.partitions_of(sequence).len(), 3);
//! ```

pub mod concept;
pub mod dot;
pub mod error;
pub mod mygrid;
pub mod ontology;
pub mod text;

pub use concept::{Concept, ConceptId};
pub use error::OntologyError;
pub use ontology::{Ontology, OntologyBuilder};
