//! Concept identities and metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cheap, copyable handle to a concept inside one [`crate::Ontology`].
///
/// Ids are dense indices into the ontology's arena; they are only meaningful
/// relative to the ontology that issued them. Serialized artifacts (module
/// annotations, data examples) should use the concept *name* instead, which
/// is unique within an ontology and survives re-building.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub(crate) u32);

impl ConceptId {
    /// The dense index of this concept within its ontology's arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense index.
    ///
    /// Only indices previously obtained from [`ConceptId::index`] on the same
    /// ontology are valid; anything else yields a handle that the ontology's
    /// accessors will reject or panic on.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ConceptId(index as u32)
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Metadata for a single ontology concept.
///
/// A concept corresponds to a named class in the domain ontology used for
/// annotation (e.g. `ProteinSequence` in myGrid). Concepts form a forest via
/// the subsumption relation; roots have no parent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Concept {
    /// Machine name, unique within the ontology (e.g. `ProteinSequence`).
    pub name: String,
    /// Human-readable label (e.g. "protein sequence").
    pub label: String,
    /// Free-text description of the concept's intended domain.
    pub description: String,
    /// Direct super-concept, or `None` for a root.
    pub parent: Option<ConceptId>,
}

impl Concept {
    /// Creates a concept with a label derived from the name by splitting
    /// `CamelCase` words.
    pub fn named(name: impl Into<String>, parent: Option<ConceptId>) -> Self {
        let name = name.into();
        let label = camel_to_words(&name);
        Concept {
            label,
            description: String::new(),
            name,
            parent,
        }
    }
}

/// Splits a `CamelCase` identifier into lower-case words.
///
/// Runs of consecutive upper-case letters are kept together so acronyms stay
/// readable: `DNASequence` becomes `"dna sequence"`, not `"d n a sequence"`.
pub fn camel_to_words(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let chars: Vec<char> = name.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch.is_uppercase() {
            let prev_lower = i > 0 && chars[i - 1].is_lowercase();
            let next_lower = i + 1 < chars.len() && chars[i + 1].is_lowercase();
            if i > 0 && (prev_lower || next_lower) && !out.ends_with(' ') {
                out.push(' ');
            }
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
        } else if ch == '_' || ch == '-' {
            if !out.ends_with(' ') {
                out.push(' ');
            }
        } else {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_splitting_handles_plain_camel_case() {
        assert_eq!(camel_to_words("ProteinSequence"), "protein sequence");
    }

    #[test]
    fn camel_splitting_keeps_acronyms_together() {
        assert_eq!(camel_to_words("DNASequence"), "dna sequence");
        assert_eq!(camel_to_words("GOTerm"), "go term");
    }

    #[test]
    fn camel_splitting_handles_separators() {
        assert_eq!(camel_to_words("protein_record"), "protein record");
        assert_eq!(camel_to_words("protein-record"), "protein record");
    }

    #[test]
    fn camel_splitting_single_word() {
        assert_eq!(camel_to_words("Protein"), "protein");
        assert_eq!(camel_to_words("protein"), "protein");
    }

    #[test]
    fn concept_id_round_trips_through_index() {
        let id = ConceptId(42);
        assert_eq!(ConceptId::from_index(id.index()), id);
        assert_eq!(id.to_string(), "c42");
    }

    #[test]
    fn named_concept_derives_label() {
        let c = Concept::named("RNASequence", None);
        assert_eq!(c.label, "rna sequence");
        assert_eq!(c.name, "RNASequence");
        assert!(c.parent.is_none());
    }
}
