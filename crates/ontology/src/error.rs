//! Error types for ontology construction and querying.

use std::fmt;

/// Errors produced while building, parsing or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A concept with this name was added twice.
    DuplicateConcept(String),
    /// A concept name was referenced but never defined.
    UnknownConcept(String),
    /// Adding the edge would have created a subsumption cycle.
    Cycle { child: String, ancestor: String },
    /// The text format was malformed at the given 1-based line.
    Parse { line: usize, message: String },
    /// A concept id from a different (or stale) ontology was used.
    ForeignId(u32),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateConcept(name) => {
                write!(f, "concept `{name}` is defined more than once")
            }
            OntologyError::UnknownConcept(name) => {
                write!(f, "concept `{name}` is not defined in this ontology")
            }
            OntologyError::Cycle { child, ancestor } => write!(
                f,
                "making `{child}` a sub-concept of `{ancestor}` would create a subsumption cycle"
            ),
            OntologyError::Parse { line, message } => {
                write!(f, "ontology text format error at line {line}: {message}")
            }
            OntologyError::ForeignId(raw) => {
                write!(f, "concept id c{raw} does not belong to this ontology")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = OntologyError::DuplicateConcept("Protein".into());
        assert!(e.to_string().contains("Protein"));
        let e = OntologyError::Cycle {
            child: "A".into(),
            ancestor: "B".into(),
        };
        assert!(e.to_string().contains("cycle"));
        let e = OntologyError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(OntologyError::ForeignId(7).to_string().contains("c7"));
        assert!(OntologyError::UnknownConcept("X".into())
            .to_string()
            .contains("not defined"));
    }
}
