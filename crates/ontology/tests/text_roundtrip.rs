//! Property test: arbitrary concept forests survive render → parse.

use dex_ontology::{text, Ontology, OntologyBuilder};
use proptest::prelude::*;

/// A random forest description: a list of (name index, parent slot).
/// Parent slot `None` makes a root; `Some(k)` attaches under the `k`-th
/// previously added concept (guaranteeing acyclicity by construction).
fn arb_forest() -> impl Strategy<Value = Vec<Option<prop::sample::Index>>> {
    proptest::collection::vec(proptest::option::of(any::<prop::sample::Index>()), 1..40)
}

fn build(forest: &[Option<prop::sample::Index>]) -> Ontology {
    let mut builder = OntologyBuilder::new("prop");
    let mut names: Vec<String> = Vec::new();
    for (i, parent) in forest.iter().enumerate() {
        let name = format!("C{i}");
        match parent {
            None => {
                builder.root(&name).unwrap();
            }
            Some(index) => {
                let parent_name = &names[index.index(names.len())];
                builder.child(&name, parent_name).unwrap();
            }
        }
        names.push(name);
    }
    builder.build().unwrap()
}

proptest! {
    #[test]
    fn render_parse_round_trip(forest in arb_forest()) {
        // The first entry is always a root (no previous concepts exist).
        prop_assume!(forest[0].is_none());
        let ontology = build(&forest);
        let rendered = text::render(&ontology);
        let parsed = text::parse(&rendered).unwrap();
        prop_assert_eq!(parsed.len(), ontology.len());
        for id in ontology.iter() {
            let name = ontology.concept_name(id);
            let pid = parsed.id(name).unwrap();
            prop_assert_eq!(
                ontology.parent(id).map(|p| ontology.concept_name(p)),
                parsed.parent(pid).map(|p| parsed.concept_name(p))
            );
            prop_assert_eq!(ontology.depth(id), parsed.depth(pid));
        }
    }

    #[test]
    fn partitions_subset_descendants(forest in arb_forest()) {
        prop_assume!(forest[0].is_none());
        let ontology = build(&forest);
        for c in ontology.iter() {
            let descendants = ontology.descendants(c);
            for p in ontology.partitions_of(c) {
                prop_assert!(descendants.contains(&p));
            }
        }
    }

    #[test]
    fn lca_is_a_common_ancestor(forest in arb_forest()) {
        prop_assume!(forest[0].is_none());
        let ontology = build(&forest);
        let ids: Vec<_> = ontology.iter().collect();
        for &a in ids.iter().take(8) {
            for &b in ids.iter().take(8) {
                if let Some(l) = ontology.lca(a, b) {
                    prop_assert!(ontology.subsumes(l, a));
                    prop_assert!(ontology.subsumes(l, b));
                }
            }
        }
    }
}
