//! Property test: the interval-labelled fast paths (`subsumes`,
//! `descendants`, `lca`, `distance`) agree with naive public-API oracles on
//! random forests, both freshly built and after a serde round trip +
//! `rebuild_index`.

use dex_ontology::{ConceptId, Ontology, OntologyBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random forest description: a list of (name index, parent slot).
/// Parent slot `None` makes a root; `Some(k)` attaches under the `k`-th
/// previously added concept (guaranteeing acyclicity by construction).
fn arb_forest() -> impl Strategy<Value = Vec<Option<prop::sample::Index>>> {
    proptest::collection::vec(proptest::option::of(any::<prop::sample::Index>()), 1..50)
}

fn build(forest: &[Option<prop::sample::Index>]) -> Ontology {
    let mut builder = OntologyBuilder::new("prop");
    let mut names: Vec<String> = Vec::new();
    for (i, parent) in forest.iter().enumerate() {
        let name = format!("C{i}");
        match parent {
            None => {
                builder.root(&name).unwrap();
            }
            Some(index) => {
                let parent_name = &names[index.index(names.len())];
                builder.child(&name, parent_name).unwrap();
            }
        }
        names.push(name);
    }
    builder.build().unwrap()
}

/// Oracle built from the `ancestors` iterator only: `a` subsumes `b` iff `a`
/// appears on `b`'s root-ward ancestor chain.
fn subsumes_oracle(o: &Ontology, a: ConceptId, b: ConceptId) -> bool {
    o.ancestors(b).any(|c| c == a)
}

/// Oracle LCA: the deepest concept on both ancestor chains.
fn lca_oracle(o: &Ontology, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
    let of_a: HashSet<ConceptId> = o.ancestors(a).collect();
    o.ancestors(b).find(|c| of_a.contains(c))
}

proptest! {
    #[test]
    fn fast_paths_match_oracles(forest in arb_forest()) {
        // The first entry is always a root (no previous concepts exist).
        prop_assume!(forest[0].is_none());
        let ontology = build(&forest);
        let ids: Vec<ConceptId> = ontology.iter().collect();
        for &a in &ids {
            let expected: Vec<ConceptId> = ids
                .iter()
                .copied()
                .filter(|&b| subsumes_oracle(&ontology, a, b))
                .collect();
            let fast = ontology.descendants(a);
            // Same set of concepts...
            let fast_set: HashSet<ConceptId> = fast.iter().copied().collect();
            prop_assert_eq!(fast_set, expected.into_iter().collect::<HashSet<_>>());
            // ...starting at the root of the subtree, each preceded by its
            // parent (the definition of pre-order).
            prop_assert_eq!(fast[0], a);
            for &d in &fast[1..] {
                let p = ontology.parent(d).unwrap();
                prop_assert!(fast.contains(&p));
            }
            for &b in &ids {
                prop_assert_eq!(
                    ontology.subsumes(a, b),
                    subsumes_oracle(&ontology, a, b),
                    "subsumes({:?}, {:?})", a, b
                );
                prop_assert_eq!(ontology.lca(a, b), lca_oracle(&ontology, a, b));
                let expected_distance = lca_oracle(&ontology, a, b).map(|l| {
                    ontology.depth(a) + ontology.depth(b) - 2 * ontology.depth(l)
                });
                prop_assert_eq!(ontology.distance(a, b), expected_distance);
            }
        }
    }

    #[test]
    fn reindex_restores_fast_paths(forest in arb_forest()) {
        prop_assume!(forest[0].is_none());
        let ontology = build(&forest);
        let json = serde_json::to_string(&ontology).unwrap();
        let mut back: Ontology = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        for a in ontology.iter() {
            prop_assert_eq!(back.descendants(a), ontology.descendants(a));
            for b in ontology.iter() {
                prop_assert_eq!(back.subsumes(a, b), ontology.subsumes(a, b));
            }
        }
    }
}
