//! The incremental engine's correctness contract (ISSUE 7): after *any*
//! seeded sequence of deltas — pool inserts/removals, module
//! withdrawals/restorations, ontology edge additions, in any batching —
//! the maintained generation reports and matching matrix are byte-identical
//! to a cold full pipeline run over the same final state. A second
//! property pins the same equivalence with seeded transient faults
//! injected into every module, riding on the retry layer to converge.

use dex_core::{GenerationConfig, MatchReport};
use dex_experiments::parallel::{generate_fleet, match_pairs_blocked, BatchConfig};
use dex_experiments::IncrementalPipeline;
use dex_modules::{
    FaultPlan, FaultyModule, FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter,
    Retrier, RetryPolicy, SharedModule,
};
use dex_pool::{build_synthetic_pool, AnnotatedInstance, InstancePool};
use dex_universe::Universe;
use dex_values::{StructuralType, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dex_core::delta::Delta;

/// Text-valued concepts the synthetic pool realizes; inputs and deltas are
/// drawn from these.
const CONCEPTS: &[&str] = &[
    "BiologicalSequence",
    "DNASequence",
    "RNASequence",
    "ProteinSequence",
    "AlgorithmName",
];

const MODULES: usize = 8;

/// Deterministic black-box behavior, scrambled by `salt` (same digest
/// construction as the generation-equivalence suite).
fn mini_module(slot: usize, inputs: &[usize], salt: u64, reject_pct: u64) -> FnModule {
    let params: Vec<Parameter> = inputs
        .iter()
        .enumerate()
        .map(|(i, &c)| Parameter::required(format!("in{i}"), StructuralType::Text, CONCEPTS[c]))
        .collect();
    FnModule::new(
        ModuleDescriptor::new(
            format!("inc:m{slot}"),
            format!("IncModule{slot}"),
            ModuleKind::RestService,
            params,
            vec![Parameter::required(
                "digest",
                StructuralType::Text,
                "Document",
            )],
        ),
        move |values| {
            let mut acc = salt;
            for v in values {
                if let Some(t) = v.as_text() {
                    for b in t.bytes() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
                    }
                }
            }
            if acc % 100 < reject_pct {
                return Err(InvocationError::rejected("salted rejection"));
            }
            Ok(vec![Value::text(format!("{acc:016x}"))])
        },
    )
}

/// Input shape of slot `i`: three shape classes so fingerprint buckets
/// collide, with per-class concepts decoded from `shape_salt`.
fn shape_for(slot: usize, shape_salt: u64) -> Vec<usize> {
    let class = slot % 3;
    let pick = |k: u32| ((shape_salt >> (8 * k)) as usize) % CONCEPTS.len();
    match class {
        0 => vec![pick(0)],
        1 => vec![pick(1), pick(2)],
        _ => vec![pick(3)],
    }
}

/// Builds the mini world: `MODULES` deterministic modules over the mygrid
/// ontology (optionally wrapped in seeded fault injection) plus a depth-3
/// synthetic pool. Called once for the live engine and once, identically,
/// for the cold oracle.
fn mini_world(
    shape_salt: u64,
    behavior_salt: u64,
    reject_pct: u64,
    faults: Option<(u64, u32)>,
) -> (Universe, InstancePool) {
    let ontology = dex_ontology::mygrid::ontology();
    let mut catalog = dex_modules::ModuleCatalog::new();
    for slot in 0..MODULES {
        let inputs = shape_for(slot, shape_salt);
        let module = mini_module(
            slot,
            &inputs,
            behavior_salt ^ (slot as u64).wrapping_mul(0x9e37_79b9),
            reject_pct,
        );
        let shared: SharedModule = match faults {
            None => Arc::new(module),
            Some((fault_seed, fault_rate_pct)) => Arc::new(FaultyModule::new(
                Arc::new(module) as SharedModule,
                FaultPlan {
                    seed: fault_seed ^ slot as u64,
                    fault_rate_millis: fault_rate_pct * 10,
                    max_consecutive: 2,
                    latency_ticks: 1,
                    flaps: Vec::new(),
                },
            )),
        };
        catalog.register(shared);
    }
    let pool = build_synthetic_pool(&ontology, 3, 7);
    let universe = Universe {
        catalog,
        ontology,
        categories: BTreeMap::new(),
        specs: BTreeMap::new(),
        legacy: Vec::new(),
        expected_match: BTreeMap::new(),
        popular: BTreeSet::new(),
        unfamiliar_output: BTreeSet::new(),
        partial_output: BTreeSet::new(),
    };
    (universe, pool)
}

/// Decodes one op word into a delta. Ops may be no-ops at apply time
/// (removing a missing realization, withdrawing an already-withdrawn
/// module) — the engine and the cold replay must agree on those too.
fn decode_delta(i: usize, word: u64) -> Delta {
    let concept = CONCEPTS[(word >> 8) as usize % CONCEPTS.len()];
    match word % 5 {
        0 => Delta::PoolInsert {
            instance: AnnotatedInstance::synthetic(
                Value::text(format!("ZX{:04x}", word >> 16 & 0xffff)),
                concept,
            ),
        },
        1 => Delta::PoolRemove {
            concept: concept.to_string(),
            occurrence: (word >> 16) as usize % 4,
        },
        2 => Delta::ModuleWithdraw {
            id: format!("inc:m{}", (word >> 16) as usize % MODULES).into(),
        },
        3 => Delta::ModuleRestore {
            id: format!("inc:m{}", (word >> 16) as usize % MODULES).into(),
        },
        _ => Delta::OntologyEdgeAdd {
            parent: concept.to_string(),
            child: format!("GrownConcept{i}"),
        },
    }
}

/// Replays the same deltas onto a cold universe/pool by direct mutation —
/// the state a from-scratch pipeline run would start from.
fn replay_cold(universe: &mut Universe, pool: &mut InstancePool, deltas: &[Delta]) {
    for delta in deltas {
        match delta {
            Delta::PoolInsert { instance } => pool.add(instance.clone()),
            Delta::PoolRemove {
                concept,
                occurrence,
            } => {
                pool.remove_realization(concept, *occurrence);
            }
            Delta::ModuleWithdraw { id } => {
                universe.catalog.withdraw(id);
            }
            Delta::ModuleRestore { id } => {
                universe.catalog.restore(id);
            }
            Delta::OntologyEdgeAdd { parent, child } => {
                let _ = universe.ontology.add_child(child.clone(), parent);
            }
        }
    }
}

/// Drives one full case: bootstrap the engine, apply the op words in
/// batches, and after every batch compare reports and matrix against a
/// cold full run over the identically-replayed state.
fn check_equivalence(
    shape_salt: u64,
    behavior_salt: u64,
    reject_pct: u64,
    ops: &[u64],
    batch_len: usize,
    faults: Option<(u64, u32)>,
) {
    let config = GenerationConfig {
        retry: if faults.is_some() {
            RetryPolicy::transient(4)
        } else {
            RetryPolicy::none()
        },
        ..GenerationConfig::default()
    };
    let (universe, pool) = mini_world(shape_salt, behavior_salt, reject_pct, faults);
    let mut engine = IncrementalPipeline::bootstrap(universe, pool, config.clone());

    let deltas: Vec<Delta> = ops
        .iter()
        .enumerate()
        .map(|(i, &w)| decode_delta(i, w))
        .collect();
    let mut applied = 0usize;
    for batch in deltas.chunks(batch_len.max(1)) {
        let report = engine.apply(batch);
        assert_eq!(report.events, batch.len());
        applied += batch.len();

        // Cold oracle over the identically-replayed state.
        let (mut cold_u, mut cold_p) = mini_world(shape_salt, behavior_salt, reject_pct, faults);
        replay_cold(&mut cold_u, &mut cold_p, &deltas[..applied]);

        let retrier = Retrier::new(config.retry);
        let fleet = generate_fleet(&cold_u, &cold_p, &config, 1, &retrier, false);
        assert!(
            fleet.failures.is_empty(),
            "cold oracle must generate cleanly: {:?}",
            fleet.failures
        );
        assert_eq!(
            engine.reports(),
            fleet.reports,
            "incremental reports diverged from cold run after {applied} deltas"
        );

        let ids = cold_u.available_ids();
        let cold: BTreeMap<_, MatchReport> =
            match_pairs_blocked(&cold_u, &ids, &cold_p, &config, &BatchConfig::default()).reports;
        assert_eq!(
            engine.matrix(),
            cold,
            "incremental matrix diverged from cold run after {applied} deltas"
        );
    }

    // The carried-forward study covers every withdrawal seen, and only
    // usable verdicts become substitutes.
    let study = engine.matching_study();
    for m in study.matches.values() {
        if let Some((_, v)) = &m.best {
            assert!(v.is_usable());
        }
    }
}

proptest! {
    /// Incremental == cold, for any seeded delta sequence and batching.
    #[test]
    fn incremental_state_matches_cold_full_run(
        shape_salt in any::<u64>(),
        behavior_salt in any::<u64>(),
        reject_pct in 0u64..40,
        ops in proptest::collection::vec(any::<u64>(), 1..9),
        batch_len in 1usize..4,
    ) {
        check_equivalence(shape_salt, behavior_salt, reject_pct, &ops, batch_len, None);
    }

    /// Same contract with bounded transient faults injected into every
    /// module: the retry layer converges both the engine and the cold
    /// oracle to the true outcomes, so the equivalence still holds
    /// byte-for-byte even though the two runs see different fault-clock
    /// phases.
    #[test]
    fn incremental_matches_cold_run_under_faults(
        shape_salt in any::<u64>(),
        behavior_salt in any::<u64>(),
        reject_pct in 0u64..40,
        fault_seed in any::<u64>(),
        fault_rate_pct in 1u32..31,
        ops in proptest::collection::vec(any::<u64>(), 1..7),
        batch_len in 1usize..3,
    ) {
        check_equivalence(
            shape_salt,
            behavior_salt,
            reject_pct,
            &ops,
            batch_len,
            Some((fault_seed, fault_rate_pct)),
        );
    }
}
