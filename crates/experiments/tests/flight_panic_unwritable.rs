//! The panic hook's dump path must be infallible: pointing `--flight-out`
//! into an unwritable (nonexistent) directory and panicking must produce a
//! normal recoverable unwind — a write failure on the post-mortem path can
//! never escalate into a double-panic abort. The fact that `catch_unwind`
//! returns at all *is* the assertion: an abort would kill the test binary.

use dex_experiments::telemetry::RunOptions;
use dex_telemetry::FlightKind;

// Panic hooks are process-global; this binary's single test owns them
// (separate test binary = separate process from flight_panic.rs).
#[test]
fn panic_with_unwritable_flight_out_unwinds_instead_of_aborting() {
    let bad_dir = std::env::temp_dir().join(format!(
        "dex-flight-unwritable-{}/no/such/dir",
        std::process::id()
    ));
    let bad_path = bad_dir.join("FLIGHT.json");
    assert!(!bad_dir.exists(), "the dump directory must not exist");

    // End-to-end through the same option plumbing the experiment bins use.
    let args = vec![format!("--flight-out={}", bad_path.display())];
    let options = RunOptions::parse(&args, &|_| None);
    assert_eq!(options.flight.as_deref(), Some(bad_path.as_path()));

    dex_telemetry::enable();
    dex_telemetry::reset();
    dex_telemetry::set_flight_path(options.flight.clone());
    dex_experiments::telemetry::install_flight_panic_hook();

    dex_telemetry::flight(
        FlightKind::FaultInjected,
        "mod.doomed",
        "pre-panic history".to_string(),
        1,
    );

    let unwound = std::panic::catch_unwind(|| {
        panic!("crash with nowhere to dump");
    });
    assert!(
        unwound.is_err(),
        "the panic must unwind normally despite the failed dump"
    );

    // Nothing was written, and the sticky incident flag stayed clear, so a
    // later dump to a good path still lands (with the panic event in it).
    assert!(!bad_path.exists());
    let good_dir =
        std::env::temp_dir().join(format!("dex-flight-recovered-{}", std::process::id()));
    std::fs::create_dir_all(&good_dir).unwrap();
    let good_path = good_dir.join("FLIGHT.json");
    dex_telemetry::set_flight_path(Some(good_path.clone()));
    assert!(
        dex_telemetry::dump_flight_fallback("run end"),
        "a failed incident dump must not block the run-end fallback"
    );
    dex_telemetry::disable();

    let dump = dex_telemetry::FlightDump::from_json(&std::fs::read_to_string(&good_path).unwrap())
        .unwrap();
    assert_eq!(dump.reason, "run end");
    assert!(
        dump.events
            .iter()
            .any(|e| matches!(e.kind, FlightKind::Panic)
                && e.detail.contains("crash with nowhere to dump")),
        "the panic event survives in the ring for the recovered dump"
    );
    std::fs::remove_dir_all(&good_dir).ok();
}
