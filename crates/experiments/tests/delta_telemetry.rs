//! The `dex.delta.*` counter family (ISSUE 7 satellite): every
//! `IncrementalPipeline::apply` publishes its accounting to the global
//! subscriber, and `RunReport::collect` surfaces the counters like any
//! other family — no special-casing in the report layer.
//!
//! Lives in its own integration-test binary: the subscriber is
//! process-global, and this test owns enable/reset/disable for the
//! process.

use dex_core::delta::Delta;
use dex_core::GenerationConfig;
use dex_experiments::IncrementalPipeline;
use dex_pool::{build_synthetic_pool, AnnotatedInstance};
use dex_values::Value;

#[test]
fn delta_counters_surface_in_run_report() {
    dex_telemetry::enable();
    dex_telemetry::reset();

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 3, 42);
    let mut engine = IncrementalPipeline::bootstrap(universe, pool, GenerationConfig::default());

    let withdrawn = engine.tracked_ids()[0].clone();
    let report = engine.apply(&[
        Delta::PoolInsert {
            instance: AnnotatedInstance::synthetic(Value::text("ACGT-telemetry"), "DNASequence"),
        },
        Delta::ModuleWithdraw {
            id: withdrawn.clone(),
        },
    ]);
    assert_eq!(report.events, 2);

    let run = dex_telemetry::collect("delta-telemetry");
    dex_telemetry::disable();

    // Zero-valued counters are pruned from reports (reset zeroes in
    // place), so read with a zero default instead of indexing.
    let counter = |name: &str| run.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("dex.delta.events"), report.events as u64);
    assert_eq!(counter("dex.delta.dirty_cells"), report.cells_dirty as u64);
    assert_eq!(
        counter("dex.delta.carried_forward"),
        report.carried_forward as u64
    );
    assert_eq!(
        counter("dex.delta.recomputed_pairs"),
        report.recomputed_pairs as u64
    );
    assert_eq!(
        counter("dex.delta.recomputed_modules"),
        report.regenerated_modules as u64
    );
    // The withdrawal really left a carried-forward substitute behind.
    assert!(engine.matching_study().matches.contains_key(&withdrawn));
}
