//! Cross-thread causal tracing through the real batched matching executor:
//! worker spans opened on scoped threads must stitch under the spawning
//! sweep span — across chunk boundaries — instead of dangling as orphan
//! roots.

use dex_core::GenerationConfig;
use dex_experiments::parallel::{match_pairs_blocked, BatchConfig};
use dex_pool::build_synthetic_pool;
use dex_telemetry::SpanRecord;

fn find<'a>(spans: &'a [SpanRecord], name: &str) -> Option<&'a SpanRecord> {
    for span in spans {
        if span.name == name {
            return Some(span);
        }
        if let Some(hit) = find(&span.children, name) {
            return Some(hit);
        }
    }
    None
}

fn any_named(spans: &[SpanRecord], name: &str) -> bool {
    find(spans, name).is_some()
}

// The single test in this binary owns the process-global subscriber; no
// serialization lock is needed.
#[test]
fn worker_spans_attach_under_sweep_across_chunk_boundaries() {
    dex_telemetry::enable();
    dex_telemetry::reset();

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 3, 42);
    let config = GenerationConfig::default();
    let ids = universe.available_ids();

    // Force the batched path regardless of worklist size, with a chunk of 1
    // so every worker crosses many chunk claim boundaries.
    let batch = BatchConfig {
        threads: 3,
        serial_cutoff: 0,
        chunk: 1,
    };
    let matrix = {
        let _sweep = dex_telemetry::span("test.sweep");
        match_pairs_blocked(&universe, &ids, &pool, &config, &batch)
    };
    assert!(
        matrix.stats.pairs_compared > batch.threads,
        "need more compared pairs ({}) than workers so chunk boundaries are \
         actually crossed",
        matrix.stats.pairs_compared
    );

    let report = dex_telemetry::collect("causal_tracing");
    dex_telemetry::disable();

    // The sweep span is a root holding the matching span.
    let sweep = find(&report.spans, "test.sweep").expect("sweep span recorded");
    assert_eq!(sweep.parent_id, 0, "sweep is a root");
    let matching = find(std::slice::from_ref(sweep), "parallel.match_pairs")
        .expect("matching span nests under the sweep");

    // Every worker span stitched under the matching span — none leaked to
    // the top level as an orphan root.
    let workers: Vec<&SpanRecord> = matching
        .children
        .iter()
        .filter(|c| c.name == "parallel.match_worker")
        .collect();
    assert!(
        workers.len() >= 2,
        "expected at least two worker spans under the matching span, got {}",
        workers.len()
    );
    assert!(
        !report
            .spans
            .iter()
            .any(|root| root.name == "parallel.match_worker"),
        "no worker span may remain an orphan root"
    );

    for worker in &workers {
        assert_eq!(worker.parent_id, matching.id, "worker parents the sweep");
        assert!(
            worker.id > matching.id,
            "span ids are monotonic in open order"
        );
        assert!(
            worker.start_ns >= matching.start_ns,
            "worker cannot start before its spawner"
        );
        assert_ne!(
            worker.thread, matching.thread,
            "workers run on their own thread tracks"
        );
    }
    // Worker threads each get a distinct track.
    let mut tracks: Vec<u64> = workers.iter().map(|w| w.thread).collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert_eq!(tracks.len(), workers.len(), "one track per worker");

    // The stitched forest exports as a defect-free Chrome trace.
    let events = dex_telemetry::chrome_trace(&report);
    let defects = dex_telemetry::validate_chrome_trace(&events);
    assert!(defects.is_empty(), "trace defects: {defects:?}");
    assert!(any_named(&report.spans, "parallel.match_pairs"));
}
