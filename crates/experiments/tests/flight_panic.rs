//! Panic post-mortem: the chained panic hook must dump the flight-recorder
//! window — with every pre-panic event intact and in order — before the
//! unwind proceeds.

use dex_telemetry::FlightKind;

// Panic hooks are process-global; this binary's single test owns them.
#[test]
fn panic_dump_preserves_pre_panic_events_in_order() {
    let dir = std::env::temp_dir().join(format!("dex-flight-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("FLIGHT.json");

    dex_telemetry::enable();
    dex_telemetry::reset();
    dex_telemetry::set_flight_path(Some(path.clone()));
    dex_experiments::telemetry::install_flight_panic_hook();

    // A recognizable pre-panic history.
    for attempt in 1..=3u64 {
        dex_telemetry::flight(
            FlightKind::Retry,
            "mod.flaky",
            format!("transient failure; attempt {attempt}"),
            attempt,
        );
    }
    dex_telemetry::flight(
        FlightKind::FaultInjected,
        "mod.flaky",
        "injected transient fault".to_string(),
        7,
    );

    let unwound = std::panic::catch_unwind(|| {
        panic!("synthetic mid-run crash");
    });
    assert!(unwound.is_err(), "the section must actually panic");
    dex_telemetry::disable();

    let dump =
        dex_telemetry::FlightDump::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();

    assert_eq!(dump.reason, "panic");
    // All four pre-panic events survive, in seq order, before the panic
    // event itself.
    assert!(
        dump.events.windows(2).all(|w| w[0].seq < w[1].seq),
        "events must be in seq order"
    );
    let kinds: Vec<&FlightKind> = dump.events.iter().map(|e| &e.kind).collect();
    let panic_at = kinds
        .iter()
        .position(|k| matches!(k, FlightKind::Panic))
        .expect("the panic itself is recorded");
    let retries = kinds[..panic_at]
        .iter()
        .filter(|k| matches!(k, FlightKind::Retry))
        .count();
    let faults = kinds[..panic_at]
        .iter()
        .filter(|k| matches!(k, FlightKind::FaultInjected))
        .count();
    assert_eq!(retries, 3, "all retry events precede the panic");
    assert_eq!(faults, 1, "the injected fault precedes the panic");
    assert!(
        dump.events[panic_at]
            .detail
            .contains("synthetic mid-run crash"),
        "panic message captured: {}",
        dump.events[panic_at].detail
    );

    // A later run-end fallback must not clobber the post-mortem.
    assert!(!dex_telemetry::dump_flight_fallback("run end"));
    let after =
        dex_telemetry::FlightDump::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(after.reason, "panic");
    std::fs::remove_dir_all(&dir).ok();
}
