//! End-to-end telemetry: enable the subscriber, run a slice of the real
//! pipeline, and check the collected `RunReport` shows the work.

use dex_core::{generate_examples, GenerationConfig, MatchSession};
use dex_pool::build_synthetic_pool;
use dex_telemetry::RunReport;

// The single test in this binary owns the process-global subscriber; no
// serialization lock is needed.
#[test]
fn pipeline_slice_populates_run_report() {
    dex_telemetry::enable();
    dex_telemetry::reset();

    let universe = {
        let _span = dex_telemetry::span("test.setup");
        dex_universe::build()
    };
    let pool = build_synthetic_pool(&universe.ontology, 3, 42);
    let config = GenerationConfig::default();

    // Generate for a couple of real modules…
    let ids: Vec<_> = universe.available_ids().into_iter().take(2).collect();
    for id in &ids {
        let module = universe.catalog.get(id).expect("available");
        generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
    }
    // …and run one memoized comparison twice to force a cache hit (the
    // second comparison of the same target reuses its memoized report).
    let session = MatchSession::new(&universe.ontology, &pool, config);
    let target = universe.catalog.get(&ids[0]).unwrap();
    let candidate = universe.catalog.get(&ids[1]).unwrap();
    session.compare_report(target.as_ref(), candidate.as_ref());
    session.compare_report(target.as_ref(), candidate.as_ref());
    session.compare_report(candidate.as_ref(), target.as_ref());

    let report = dex_telemetry::collect("telemetry_run");
    dex_telemetry::disable();

    // Invocations happened and were split by outcome.
    assert!(report.counters["dex.invoke.total"] > 0);
    assert!(report.counters.contains_key("dex.invoke.ok"));
    // Generation counted modules and accepted examples.
    assert_eq!(
        report.counters["dex.generate.modules"],
        ids.len() as u64 + 2
    );
    assert!(report.counters["dex.generate.examples_accepted"] > 0);
    // The match session recorded misses (and hits, since pair order reuses
    // the two generated reports).
    assert!(report.counters["dex.match.cache_misses"] > 0);
    assert!(report.counters["dex.match.cache_hits"] > 0);
    assert_eq!(report.counters["dex.match.pairs"], 3);
    // Pool lookups fired and the generation histogram sampled something.
    assert!(report.counters["dex.pool.lookups"] > 0);
    assert!(report.histograms["dex.generate.module_ns"].count > 0);
    // The explicit span closed into the forest.
    assert!(report
        .spans
        .iter()
        .any(|s| s.name == "test.setup" && s.children.iter().any(|c| c.name == "universe.build")));

    // The artifact parses back losslessly.
    let json = report.to_json().unwrap();
    let back = RunReport::from_json(&json).unwrap();
    assert_eq!(back, report);
}
