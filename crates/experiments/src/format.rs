//! Plain-text table rendering for experiment output.

/// Renders an aligned text table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            let width = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<width$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = render_row(&header_cells);
    out.push('\n');
    out.push_str(&format!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    for row in rows {
        out.push('\n');
        out.push_str(&render_row(row));
    }
    out
}

/// A section header for experiment output.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "n"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{out}");
        assert!(out.contains("alpha"));
    }

    #[test]
    fn heading_wraps_title() {
        assert!(heading("Table 1").contains("=== Table 1 ==="));
    }
}
