//! The experiment computations. Each function returns the rendered text of
//! one table/figure, paper numbers alongside measured ones.

use crate::format::{heading, table};
use crate::{Context, FaultConfig};
use dex_core::coverage::measure_coverage;
use dex_core::metrics::score;
use dex_pool::build_synthetic_pool;
use dex_repair::{
    build_corpus_with, generate_repository, repair_repository_with, run_matching_study_with,
    RepositoryPlan,
};
use dex_study::run_user_study;
use dex_universe::{Category, SpecOracle};
use dex_values::classify::classify_concept;
use std::collections::BTreeMap;

/// Distribution of a per-module metric into value buckets.
fn bucketize(values: impl Iterator<Item = f64>, decimals: usize) -> BTreeMap<String, usize> {
    let mut buckets: BTreeMap<String, usize> = BTreeMap::new();
    for v in values {
        *buckets.entry(format!("{v:.decimals$}")).or_default() += 1;
    }
    buckets
}

/// Table 1: completeness of the generated data examples.
pub fn table1(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.table1");
    let buckets = bucketize(
        ctx.reports.iter().map(|(id, report)| {
            let oracle = SpecOracle::new(&ctx.universe.specs[id]);
            score(&report.examples, &oracle).completeness
        }),
        3,
    );
    // Paper Table 1 rows (its row counts sum to 254 for 252 modules — an
    // internal inconsistency of the paper; the accompanying text says 236
    // complete + 16 incomplete, which is what we target).
    let paper: &[(&str, &str)] = &[
        ("1.000", "236"),
        ("0.750", "8"),
        ("0.625", "4"),
        ("0.600", "4"),
        ("0.500", "2"),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for (value, paper_count) in paper {
        let measured = buckets.get(*value).copied().unwrap_or(0);
        rows.push(vec![
            value.to_string(),
            (*paper_count).to_string(),
            measured.to_string(),
        ]);
        seen.push(value);
    }
    for (value, count) in buckets.iter().rev() {
        if !seen.contains(&value.as_str()) {
            rows.push(vec![value.clone(), "-".into(), count.to_string()]);
        }
    }
    let mut out = heading("Table 1: data example completeness");
    out.push_str(&table(
        &["completeness", "paper #modules", "measured #modules"],
        &rows,
    ));
    out.push('\n');
    out
}

/// Table 2: conciseness of the generated data examples.
pub fn table2(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.table2");
    let buckets = bucketize(
        ctx.reports.iter().map(|(id, report)| {
            let oracle = SpecOracle::new(&ctx.universe.specs[id]);
            score(&report.examples, &oracle).conciseness
        }),
        2,
    );
    let paper: &[(&str, &str)] = &[
        ("1.00", "192"),
        ("0.50", "32"),
        ("0.47", "7"),
        ("0.40", "4"),
        ("0.33", "4"),
        ("0.20", "8"),
        ("0.17", "4"),
        ("0.09", "1 (paper prints 0.1)"),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for (value, paper_count) in paper {
        let measured = buckets.get(*value).copied().unwrap_or(0);
        rows.push(vec![
            value.to_string(),
            (*paper_count).to_string(),
            measured.to_string(),
        ]);
        seen.push(value);
    }
    for (value, count) in buckets.iter().rev() {
        if !seen.contains(&value.as_str()) {
            rows.push(vec![value.clone(), "-".into(), count.to_string()]);
        }
    }
    let mut out = heading("Table 2: data example conciseness");
    out.push_str(&table(
        &["conciseness", "paper #modules", "measured #modules"],
        &rows,
    ));
    out.push('\n');
    out
}

/// Table 3: kinds of data manipulation.
pub fn table3(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.table3");
    let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
    for category in ctx.universe.categories.values() {
        *counts.entry(*category).or_default() += 1;
    }
    let rows: Vec<Vec<String>> = Category::ALL
        .iter()
        .map(|c| {
            vec![
                c.to_string(),
                c.paper_count().to_string(),
                counts.get(c).copied().unwrap_or(0).to_string(),
            ]
        })
        .collect();
    let mut out = heading("Table 3: kinds of data manipulation");
    out.push_str(&table(
        &["category", "paper #modules", "measured #modules"],
        &rows,
    ));
    out.push('\n');
    out
}

/// §4.3 coverage: input partitions fully covered; output partitions covered
/// for all but 19 modules.
pub fn coverage(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.coverage");
    let mut inputs_fully = 0usize;
    let mut outputs_fully = 0usize;
    let mut exceptions: Vec<String> = Vec::new();
    for (id, report) in &ctx.reports {
        if report.input_partition_coverage(&ctx.universe.ontology) >= 1.0 {
            inputs_fully += 1;
        }
        let descriptor = ctx.universe.catalog.descriptor(id).expect("registered");
        let cov = measure_coverage(
            descriptor,
            &report.examples,
            &ctx.universe.ontology,
            classify_concept,
        )
        .expect("known concepts");
        if cov.outputs_fully_covered() {
            outputs_fully += 1;
        } else {
            exceptions.push(descriptor.name.clone());
        }
    }
    let rows = vec![
        vec![
            "modules with all input partitions covered".into(),
            "252 (all)".into(),
            inputs_fully.to_string(),
        ],
        vec![
            "modules with all output partitions covered".into(),
            "233".into(),
            outputs_fully.to_string(),
        ],
        vec![
            "output-coverage exceptions".into(),
            "19 (e.g. get_genes_by_enzyme, link, binfo)".into(),
            exceptions.len().to_string(),
        ],
    ];
    let mut out = heading("Section 4.3: partition coverage");
    out.push_str(&table(&["measure", "paper", "measured"], &rows));
    out.push_str("\nmeasured exceptions: ");
    out.push_str(&exceptions.join(", "));
    out.push('\n');
    out
}

/// Figure 5: modules identified by the three users, with and without data
/// examples, plus the per-category breakdown of §5.
pub fn figure5(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.figure5");
    let outcome = run_user_study(&ctx.universe, &ctx.example_sets());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let paper = [
        ("user1", 47usize, 169usize),
        ("user2", 45, 166),
        ("user3", 49, 171),
    ];
    for (user, (paper_user, paper_without, paper_with)) in outcome.users.iter().zip(paper.iter()) {
        debug_assert_eq!(&user.user, paper_user);
        rows.push(vec![
            user.user.clone(),
            format!("{paper_without} / {paper_with}"),
            format!("{} / {}", user.without_count(), user.with_count()),
        ]);
    }
    let mut out = heading("Figure 5: understanding modules with/without data examples");
    out.push_str(&table(
        &[
            "user",
            "paper without/with (user1 exact; others ≈)",
            "measured without/with",
        ],
        &rows,
    ));

    out.push_str("\n\nper-category identification with examples (user1; paper: 53/53, 43/51, 62/62, 5/27, 6/59):\n");
    let user1 = &outcome.users[0];
    let rows: Vec<Vec<String>> = Category::ALL
        .iter()
        .map(|c| {
            let (hit, total) = user1.per_category[c];
            vec![c.to_string(), format!("{hit}/{total}")]
        })
        .collect();
    out.push_str(&table(&["category", "identified"], &rows));
    out.push_str(&format!(
        "\n\nmean identification with examples: {:.0}% (paper: 73%)\n",
        outcome.mean_with_rate() * 100.0
    ));
    out
}

/// All-pairs matching over a thinned module sample, exercising the shared
/// [`dex_core::MatchSession`] memoization that the full §6 study relies on.
///
/// Not a paper table — this is the observability showcase: it renders the
/// verdict distribution next to the session's cache statistics, and (when
/// telemetry is on) leaves nonzero `dex.match.cache_hits`/`cache_misses`
/// counters in `TELEMETRY.json`.
pub fn matching_summary(ctx: &Context) -> String {
    let _span = dex_telemetry::span("exp.matching_summary");
    let ids: Vec<_> = ctx
        .universe
        .available_ids()
        .into_iter()
        .step_by(16)
        .collect();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut verdicts: BTreeMap<String, usize> = BTreeMap::new();
    let matrix =
        crate::parallel::match_pairs_parallel(&ctx.universe, &ids, &ctx.pool, &ctx.config, threads);
    for report in matrix.values() {
        let label = match &report.outcome {
            dex_core::MatchOutcome::Verdict(v) => format!("{v:?}").to_lowercase(),
            dex_core::MatchOutcome::Incomparable(_) => "incomparable".to_string(),
        };
        *verdicts.entry(label).or_default() += 1;
    }

    let rows: Vec<Vec<String>> = verdicts
        .iter()
        .map(|(v, n)| vec![v.clone(), n.to_string()])
        .collect();
    let mut out = heading(&format!(
        "Matching summary: {} modules, {} ordered pairs",
        ids.len(),
        matrix.len()
    ));
    out.push_str(&table(&["verdict", "#pairs"], &rows));
    out.push('\n');
    out
}

/// Results of the decay-dependent experiments (Figure 8 and the §6 repair
/// study), which share the repository, corpus and matching study.
pub struct DecayResults {
    /// Rendered Figure 8.
    pub figure8: String,
    /// Rendered repair summary.
    pub repair: String,
}

/// Runs the §6 pipeline: generate repository, record corpus, decay, match,
/// repair. `plan` defaults to the paper-scale population.
pub fn decay_experiments(plan: &RepositoryPlan) -> DecayResults {
    decay_experiments_with(plan, &FaultConfig::none())
}

/// [`decay_experiments`] under an explicit [`FaultConfig`]: every catalog
/// module is wrapped in the injector (if any) before the corpus is recorded,
/// and the corpus build, matching study, and repair verification all retry
/// transients under the config's policy. Residual corpus failures degrade
/// the run instead of aborting it unless `fail_fast` is set.
pub fn decay_experiments_with(plan: &RepositoryPlan, faults: &FaultConfig) -> DecayResults {
    let _span = dex_telemetry::span("exp.decay");
    let mut universe = dex_universe::build();
    faults.apply(&mut universe.catalog);
    let pool = build_synthetic_pool(&universe.ontology, 40, 77);
    let repository = generate_repository(&universe, &pool, plan);
    let (corpus, corpus_report) = build_corpus_with(
        &universe,
        &repository,
        &pool,
        faults.retry,
        faults.fail_fast,
    );
    if !corpus_report.is_clean() {
        eprintln!(
            "decay: corpus degraded — {} enactments and {} archive invocations failed",
            corpus_report.failed_enactments.len(),
            corpus_report.failed_archive_invocations.len()
        );
    }
    universe.decay();
    if dex_telemetry::flight_on() {
        // The decay wave is the run's mass withdrawal: capture the flight
        // window (injected faults, retries, exhaustion leading up to it)
        // as the post-mortem artifact.
        for id in universe.catalog.withdrawn_ids() {
            dex_telemetry::flight(
                dex_telemetry::FlightKind::ModuleWithdrawn,
                id.as_str(),
                "withdrawn from catalog (decay)".to_string(),
                0,
            );
        }
        dex_telemetry::dump_flight("module withdrawn");
    }
    let study =
        run_matching_study_with(&universe.catalog, &corpus, &universe.ontology, faults.retry);
    let (eq, ov, none) = study.counts();

    let with_examples = study
        .matches
        .values()
        .filter(|m| m.reconstructed_examples > 0)
        .count();
    let rows = vec![
        vec![
            "unavailable modules with reconstructed data examples".into(),
            "72".into(),
            with_examples.to_string(),
        ],
        vec![
            "equivalent substitute found".into(),
            "16".into(),
            eq.to_string(),
        ],
        vec![
            "overlapping substitute found".into(),
            "23".into(),
            ov.to_string(),
        ],
        vec!["no usable substitute".into(), "33".into(), none.to_string()],
    ];
    let mut figure8 = heading("Figure 8: matching unavailable modules");
    figure8.push_str(&table(&["measure", "paper", "measured"], &rows));
    figure8.push('\n');

    let (_, summary) = repair_repository_with(
        &repository,
        &universe.catalog,
        &study,
        &corpus,
        &universe.ontology,
        faults.retry,
    );
    let broken = repository.len() - summary.healthy;
    let rows = vec![
        vec![
            "workflows in repository".into(),
            "~3000".into(),
            repository.len().to_string(),
        ],
        vec![
            "broken workflows".into(),
            "~1500".into(),
            broken.to_string(),
        ],
        vec![
            "workflows repaired (total)".into(),
            "334".into(),
            summary.repaired().to_string(),
        ],
        vec![
            "  …via equivalent substitutes".into(),
            "321".into(),
            summary.via_equivalent.to_string(),
        ],
        vec![
            "  …via overlapping substitutes".into(),
            "13".into(),
            summary.via_overlapping.to_string(),
        ],
        vec![
            "  …of which partly repaired".into(),
            "73".into(),
            summary.partially_repaired.to_string(),
        ],
        vec![
            "fully repaired (re-enacted + verified)".into(),
            "261".into(),
            summary.fully_repaired.to_string(),
        ],
    ];
    let mut repair = heading("Section 6: repairing decayed workflows");
    repair.push_str(&table(&["measure", "paper", "measured"], &rows));
    repair.push('\n');

    DecayResults { figure8, repair }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_decay_run_produces_figure8_headline() {
        let results = decay_experiments(&RepositoryPlan::small(3));
        assert!(results.figure8.contains("16"));
        assert!(results.figure8.contains("23"));
        assert!(results.figure8.contains("33"));
        assert!(results.repair.contains("workflows repaired"));
    }
}
