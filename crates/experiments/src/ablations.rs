//! Ablations of the design choices called out in DESIGN.md §5.
//!
//! * **A. Partitioning vs random selection** — generate examples for all
//!   252 modules with the ontology-partitioned heuristic and with the
//!   random baseline at the *same example budget*, and score both against
//!   the ground-truth oracles.
//! * **B. Pool-size sweep** — how input-partition coverage and completeness
//!   degrade as the annotated-instance pool shrinks.
//! * **C. Annotation specificity** — re-annotate every pool instance with
//!   its concept's *parent* (what naive declared-level harvesting would
//!   produce) and watch realization-based selection starve.
//! * **D. Matching method** — the aligned-example matcher vs the
//!   provenance-trace-similarity baseline of the author's earlier work, on
//!   the Figure 8 task, scored against the planted ground truth.

use crate::format::{heading, table};
use crate::Context;
use dex_core::baseline::{generate_random_examples, trace_similarity};
use dex_core::metrics::score;
use dex_core::{generate_examples, GenerationConfig};
use dex_pool::{build_synthetic_pool, AnnotatedInstance, InstancePool};
use dex_repair::{build_corpus, generate_repository, run_matching_study, RepositoryPlan};
use dex_universe::{ExpectedMatch, SpecOracle};
use dex_values::classify::classify_concept;

/// Ablation A: partitioned generation vs random selection at equal budget.
pub fn partitioning_vs_random(ctx: &Context) -> String {
    let mut part_completeness = 0.0;
    let mut part_conciseness = 0.0;
    let mut rand_completeness = 0.0;
    let mut rand_conciseness = 0.0;
    let n = ctx.reports.len() as f64;

    for (id, report) in &ctx.reports {
        let oracle = SpecOracle::new(&ctx.universe.specs[id]);
        let s = score(&report.examples, &oracle);
        part_completeness += s.completeness;
        part_conciseness += s.conciseness;

        let module = ctx.universe.catalog.get(id).expect("available");
        let random = generate_random_examples(
            module.as_ref(),
            &ctx.universe.ontology,
            &ctx.pool,
            report.examples.len().max(1),
            0xab1a,
        )
        .expect("random generation");
        let s = score(&random, &oracle);
        rand_completeness += s.completeness;
        rand_conciseness += s.conciseness;
    }

    let rows = vec![
        vec![
            "ontology partitioning (the paper)".into(),
            format!("{:.3}", part_completeness / n),
            format!("{:.3}", part_conciseness / n),
        ],
        vec![
            "random selection (baseline)".into(),
            format!("{:.3}", rand_completeness / n),
            format!("{:.3}", rand_conciseness / n),
        ],
    ];
    let mut out = heading("Ablation A: partitioning vs random selection (equal example budget)");
    out.push_str(&table(
        &["generator", "mean completeness", "mean conciseness"],
        &rows,
    ));
    out.push('\n');
    out
}

/// Ablation B: pool-size sweep.
pub fn pool_size_sweep(ctx: &Context) -> String {
    let mut rows = Vec::new();
    for per_concept in [1usize, 2, 4, 8] {
        let pool = build_synthetic_pool(&ctx.universe.ontology, per_concept, crate::POOL_SEED);
        let mut coverage_sum = 0.0;
        let mut completeness_sum = 0.0;
        let mut n = 0.0;
        for id in ctx.universe.available_ids() {
            let module = ctx.universe.catalog.get(&id).expect("available");
            let report =
                generate_examples(module.as_ref(), &ctx.universe.ontology, &pool, &ctx.config)
                    .expect("generation");
            coverage_sum += report.input_partition_coverage(&ctx.universe.ontology);
            let oracle = SpecOracle::new(&ctx.universe.specs[&id]);
            completeness_sum += score(&report.examples, &oracle).completeness;
            n += 1.0;
        }
        rows.push(vec![
            per_concept.to_string(),
            format!("{:.3}", coverage_sum / n),
            format!("{:.3}", completeness_sum / n),
        ]);
    }
    let mut out = heading("Ablation B: pool size (realizations per concept)");
    out.push_str(&table(
        &[
            "pool realizations/concept",
            "mean input coverage",
            "mean completeness",
        ],
        &rows,
    ));
    out.push('\n');
    out
}

/// Ablation C: most-specific vs declared-level instance annotation.
pub fn annotation_specificity(ctx: &Context) -> String {
    // Coarsen: every instance re-annotated with its concept's parent (when
    // one exists) — the level a parameter-declaration-driven harvest would
    // record for sub-typed values.
    let ontology = &ctx.universe.ontology;
    let mut coarse = InstancePool::new("coarse");
    for inst in ctx.pool.iter() {
        let concept = ontology
            .id(&inst.concept)
            .and_then(|c| ontology.parent(c))
            .map(|p| ontology.concept_name(p).to_string())
            .unwrap_or_else(|| inst.concept.clone());
        coarse.add(AnnotatedInstance::synthetic(inst.value.clone(), concept));
    }

    let mut rows = Vec::new();
    for (label, pool) in [
        ("most-specific (ours)", &ctx.pool),
        ("declared-level (coarse)", &coarse),
    ] {
        let mut coverage_sum = 0.0;
        let mut produced = 0usize;
        let mut n = 0.0;
        for id in ctx.universe.available_ids() {
            let module = ctx.universe.catalog.get(&id).expect("available");
            let report = generate_examples(module.as_ref(), ontology, pool, &ctx.config)
                .expect("generation");
            coverage_sum += report.input_partition_coverage(ontology);
            produced += report.examples.len();
            n += 1.0;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", coverage_sum / n),
            produced.to_string(),
        ]);
    }
    let mut out = heading("Ablation C: pool annotation specificity");
    out.push_str(&table(
        &[
            "instance annotation",
            "mean input coverage",
            "total examples",
        ],
        &rows,
    ));
    out.push('\n');
    out
}

/// Ablation D: aligned matching vs trace-similarity on the Figure 8 task.
pub fn matching_method(plan: &RepositoryPlan) -> String {
    let mut universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 40, 77);
    let repository = generate_repository(&universe, &pool, plan);
    let corpus = build_corpus(&universe, &repository, &pool);
    universe.decay();

    // Ground truth: a legacy module is substitutable iff an equivalent or
    // overlapping available module was planted.
    let positives: std::collections::BTreeSet<_> = universe
        .expected_match
        .iter()
        .filter(|(_, e)| !matches!(e, ExpectedMatch::None))
        .map(|(id, _)| id.clone())
        .collect();

    // Method 1: the paper's aligned matcher.
    let study = run_matching_study(&universe.catalog, &corpus, &universe.ontology);
    let (mut tp, mut fp, mut fnr) = (0usize, 0usize, 0usize);
    for (id, m) in &study.matches {
        let predicted = m.best.is_some();
        match (predicted, positives.contains(id)) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnr += 1,
            (false, false) => {}
        }
    }
    let aligned_row = vec![
        "aligned data examples (the paper)".to_string(),
        tp.to_string(),
        fp.to_string(),
        fnr.to_string(),
    ];

    // Method 2: trace similarity ([4]): predict substitutable when any
    // strictly-mappable candidate's generated examples look similar.
    let config = GenerationConfig::default();
    let (mut tp, mut fp, mut fnr) = (0usize, 0usize, 0usize);
    for legacy in universe.catalog.withdrawn_ids() {
        let descriptor = universe.catalog.descriptor(&legacy).expect("kept").clone();
        let legacy_examples = dex_provenance::reconstruct_examples(&corpus, &legacy, &descriptor);
        let mut predicted = false;
        for (_, candidate) in universe.catalog.iter_available() {
            if dex_core::matching::map_parameters(
                &descriptor,
                candidate.descriptor(),
                &universe.ontology,
                dex_core::matching::MappingMode::Strict,
            )
            .is_err()
            {
                continue;
            }
            let Ok(report) =
                generate_examples(candidate.as_ref(), &universe.ontology, &pool, &config)
            else {
                continue;
            };
            if trace_similarity(&legacy_examples, &report.examples, classify_concept) >= 0.8 {
                predicted = true;
                break;
            }
        }
        match (predicted, positives.contains(&legacy)) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnr += 1,
            (false, false) => {}
        }
    }
    let baseline_row = vec![
        "trace similarity (earlier work [4])".to_string(),
        tp.to_string(),
        fp.to_string(),
        fnr.to_string(),
    ];

    let mut out =
        heading("Ablation D: matching method on the Figure 8 task (39 substitutable / 33 not)");
    out.push_str(&table(
        &[
            "method",
            "true positives",
            "false positives",
            "false negatives",
        ],
        &[aligned_row, baseline_row],
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_beats_random_on_completeness() {
        let ctx = Context::build();
        let text = partitioning_vs_random(&ctx);
        // Extract the two completeness numbers from the rendered table.
        let numbers: Vec<f64> = text
            .lines()
            .filter(|l| l.contains("partitioning") || l.contains("random"))
            .filter_map(|l| {
                l.split('|')
                    .nth(2)
                    .and_then(|cell| cell.trim().parse::<f64>().ok())
            })
            .collect();
        assert_eq!(numbers.len(), 2, "{text}");
        assert!(
            numbers[0] > numbers[1],
            "partitioned {} should beat random {}",
            numbers[0],
            numbers[1]
        );
    }
}
