//! # dex-experiments
//!
//! Regenerates every table and figure of the paper's evaluation. Each
//! binary prints the paper's reported numbers next to the measured ones:
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_table1` | Table 1 — completeness distribution |
//! | `exp_table2` | Table 2 — conciseness distribution |
//! | `exp_table3` | Table 3 — module category counts |
//! | `exp_coverage` | §4.3 — input/output partition coverage |
//! | `exp_figure5` | Figure 5 — users with/without data examples |
//! | `exp_figure8` | Figure 8 — matching withdrawn modules |
//! | `exp_repair` | §6 — workflow repair counts |
//! | `exp_all` | all of the above, in order |
//!
//! The heavy artifacts (universe, pool, registry, corpus) are built once
//! per process via [`Context`]; all binaries use the same fixed seeds, so
//! every run regenerates identical tables.

use dex_core::{ExampleSet, GenerationConfig, GenerationReport};
use dex_modules::{ModuleId, Retrier, RetryStats};
use dex_pool::{build_synthetic_pool, InstancePool};
use dex_universe::Universe;
use std::collections::BTreeMap;

pub mod ablations;
pub mod continuous;
pub mod experiments;
pub mod faults;
pub mod format;
pub mod incremental;
pub mod parallel;
pub mod telemetry;

pub use continuous::{
    run_continuous, ContinuousConfig, ContinuousReport, ContinuousState, WaveReport,
};
pub use faults::FaultConfig;
pub use incremental::IncrementalPipeline;
pub use parallel::{BatchConfig, BlockedMatchMatrix, BlockedMatchSummary};
pub use telemetry::TelemetryRun;

/// Seed of the synthetic curator pool used by the evaluation.
pub const POOL_SEED: u64 = 42;
/// Realizations per concept in the curator pool.
pub const POOL_PER_CONCEPT: usize = 6;

/// Everything the experiments need, built once.
pub struct Context {
    /// The (pre-decay) universe.
    pub universe: Universe,
    /// The curator pool (§4.1's annotated-instance pool, synthetic flavor).
    pub pool: InstancePool,
    /// Generator configuration.
    pub config: GenerationConfig,
    /// Per-module generation reports for the 252 available modules.
    pub reports: BTreeMap<ModuleId, GenerationReport>,
    /// Modules whose generation failed even after retries — empty on a
    /// healthy run; populated (instead of panicking) on a degraded one.
    pub generation_failures: Vec<(ModuleId, String)>,
    /// Retry accounting for the generation phase.
    pub retry: RetryStats,
}

impl Context {
    /// Builds the shared experimental context: universe + pool + data
    /// examples for all 252 available modules. Honors the process-level
    /// fault configuration ([`FaultConfig::from_env`]); call
    /// [`Context::build_with`] to pin one explicitly.
    pub fn build() -> Context {
        Context::build_with(&FaultConfig::from_env())
    }

    /// [`Context::build`] under an explicit [`FaultConfig`]: the catalog is
    /// wrapped in the injector (if any) before generation, generation rides
    /// transients out under the config's retry policy, and residual
    /// failures degrade the context instead of aborting it (unless
    /// `fail_fast`).
    pub fn build_with(faults: &FaultConfig) -> Context {
        let _span = dex_telemetry::span("context.build");
        let mut universe = dex_universe::build();
        faults.apply(&mut universe.catalog);
        let pool = {
            let _span = dex_telemetry::span("pool.build");
            build_synthetic_pool(&universe.ontology, POOL_PER_CONCEPT, POOL_SEED)
        };
        let config = GenerationConfig {
            retry: faults.retry,
            ..GenerationConfig::default()
        };
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let retrier = Retrier::new(config.retry);
        let fleet = parallel::generate_fleet(
            &universe,
            &pool,
            &config,
            threads,
            &retrier,
            faults.fail_fast,
        );
        Context {
            universe,
            pool,
            config,
            reports: fleet.reports,
            generation_failures: fleet.failures,
            retry: retrier.stats(),
        }
    }

    /// The generated example sets, keyed by module.
    pub fn example_sets(&self) -> BTreeMap<ModuleId, ExampleSet> {
        self.reports
            .iter()
            .map(|(id, r)| (id.clone(), r.examples.clone()))
            .collect()
    }
}
