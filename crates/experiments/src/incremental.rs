//! Delta-driven incremental re-annotation (ROADMAP item 4): apply typed
//! [`Delta`] events to live pipeline state instead of re-running the whole
//! pipeline, keeping examples and the matching matrix *byte-identical* to a
//! cold full run on the resulting registry state.
//!
//! The engine owns the three layers a cold run builds from scratch and
//! maintains each one incrementally:
//!
//! 1. **Examples** — one generation report per tracked module, plus the
//!    module's [`generation_signature`] at the time it was generated. A
//!    delta dirties a module only if the candidate stage
//!    ([`DependencyIndex`]) flags it *and* its signature actually changed;
//!    only then is it regenerated, through the engine's warm
//!    [`InvocationCache`], so unchanged `(module, inputs)` invocations are
//!    answered from memory even inside a regeneration.
//! 2. **Blocking** — an incrementally maintained [`FingerprintIndex`]
//!    (single-slot `insert`/`remove`, no rebuilds).
//! 3. **Verdicts** — the sparse matrix of compared pairs, keyed by tracked
//!    slot. A regenerated module whose examples changed re-matches its
//!    *rows* only (`(m, peer)`): under strict mapping a verdict reads the
//!    target's examples and the candidate's behavior, never the candidate's
//!    own examples, so columns `(peer, m)` carry forward untouched. A
//!    module whose *fingerprint* changed migrates buckets: its old pairs
//!    are dropped and its new bucket's rows and columns are computed fresh.
//!
//! Withdrawn modules are left stale on purpose: their reports and
//! signatures are frozen at withdrawal (the catalog keeps descriptors but
//! not invokable handles), and the signature check at restore time decides
//! whether anything that happened meanwhile requires regeneration.
//!
//! At withdrawal the engine also feeds the repair layer: the module's
//! last-known row verdicts are ranked with the §6 study's own ordering
//! ([`pick_better_substitute`]) into a carried-forward substitute, exposed
//! via [`IncrementalPipeline::matching_study`] — the repair engine's
//! substitute search answered with zero replay invocations.

use dex_core::delta::{Delta, DeltaReport, DependencyIndex};
use dex_core::matching::map_parameters;
use dex_core::{
    generate_examples_retrying, generation_signature, match_against_examples_retrying,
    FingerprintIndex, GenerationConfig, GenerationError, GenerationReport, MappingMode,
    MatchOutcome, MatchReport, MatchVerdict,
};
use dex_modules::{InvocationCache, ModuleId, Retrier};
use dex_pool::InstancePool;
use dex_repair::{pick_better_substitute, LegacyMatch, MatchingStudy};
use dex_universe::Universe;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

type SharedGeneration = Arc<Result<GenerationReport, GenerationError>>;

/// Live, incrementally maintained pipeline state over one universe.
pub struct IncrementalPipeline {
    universe: Universe,
    pool: InstancePool,
    config: GenerationConfig,
    /// The modules tracked by this engine: the universe's available modern
    /// modules at bootstrap, in sorted id order. Deltas may only reference
    /// these.
    ids: Vec<ModuleId>,
    slot_of: BTreeMap<ModuleId, usize>,
    /// Current availability per slot (kept in sync with the catalog).
    available: Vec<bool>,
    deps: DependencyIndex,
    index: FingerprintIndex,
    reports: Vec<SharedGeneration>,
    /// Invariant: `gen_sigs[i]` is the generation signature at the moment
    /// `reports[i]` was generated — so `reports[i]` is current exactly when
    /// `gen_sigs[i]` equals the signature recomputed against present state.
    gen_sigs: Vec<u64>,
    /// Stored outcomes of every comparable ordered pair among available
    /// slots. The `MatchReport` wrapper is reconstructed on demand: target
    /// and candidate ids are the key, and the `examples` count is derived
    /// from the target's current report, which by construction matches the
    /// report in force when the outcome was computed.
    verdicts: BTreeMap<(usize, usize), MatchOutcome>,
    cache: InvocationCache,
    /// Carried-forward substitute per withdrawn module, captured from its
    /// last-known row verdicts at withdrawal time.
    substitutes: BTreeMap<ModuleId, LegacyMatch>,
}

impl IncrementalPipeline {
    /// Cold-bootstraps the engine: generates examples for every available
    /// modern module, builds the fingerprint index and dependency graph,
    /// and fills the full comparable-pair verdict matrix.
    pub fn bootstrap(
        universe: Universe,
        pool: InstancePool,
        config: GenerationConfig,
    ) -> IncrementalPipeline {
        let _span = dex_telemetry::span("incremental.bootstrap");
        let ids = universe.available_ids();
        let slot_of: BTreeMap<ModuleId, usize> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let cache = InvocationCache::new();
        let retrier = Retrier::new(config.retry);
        let mut deps = DependencyIndex::new();
        let mut reports = Vec::with_capacity(ids.len());
        let mut gen_sigs = Vec::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            let module = universe.catalog.get(id).expect("bootstrap id is available");
            deps.set_module(i, module.descriptor(), &universe.ontology);
            gen_sigs.push(generation_signature(
                module.descriptor(),
                &universe.ontology,
                &pool,
                &config,
            ));
            reports.push(Arc::new(generate_examples_retrying(
                module.as_ref(),
                &universe.ontology,
                &pool,
                &config,
                &cache,
                &retrier,
            )));
        }
        let index = FingerprintIndex::build(
            ids.iter()
                .map(|id| universe.catalog.get(id).map(|m| m.descriptor())),
            &universe.ontology,
        );
        let available = vec![true; ids.len()];
        let mut engine = IncrementalPipeline {
            universe,
            pool,
            config,
            ids,
            slot_of,
            available,
            deps,
            index,
            reports,
            gen_sigs,
            verdicts: BTreeMap::new(),
            cache,
            substitutes: BTreeMap::new(),
        };
        for (t, c) in engine.index.comparable_pairs() {
            let outcome = engine.pair_outcome(t, c, &retrier);
            engine.verdicts.insert((t, c), outcome);
        }
        engine
    }

    /// Applies one batch of deltas and returns the batch's accounting.
    ///
    /// After this returns, [`reports`](IncrementalPipeline::reports) and
    /// [`matrix`](IncrementalPipeline::matrix) are byte-identical to what a
    /// cold full run over the mutated universe/pool would produce (the
    /// equivalence proptests in `tests/incremental_equivalence.rs` pin
    /// this, with and without fault injection).
    pub fn apply(&mut self, deltas: &[Delta]) -> DeltaReport {
        let _span = dex_telemetry::span("incremental.apply");
        let retrier = Retrier::new(self.config.retry);
        let mut stats = DeltaReport {
            events: deltas.len(),
            ..DeltaReport::default()
        };

        // Phase A — mutate primary state, accumulating the candidate dirty
        // sets (stage 1 of the dirty-set derivation; see dex_core::delta).
        let mut dirty_candidates: BTreeSet<usize> = BTreeSet::new();
        let mut plan_dirty: BTreeSet<usize> = BTreeSet::new();
        for delta in deltas {
            if dex_telemetry::flight_on() {
                let (target, detail) = match delta {
                    Delta::PoolInsert { instance } => {
                        (instance.concept.as_str(), "pool insert".to_string())
                    }
                    Delta::PoolRemove {
                        concept,
                        occurrence,
                    } => (concept.as_str(), format!("pool remove #{occurrence}")),
                    Delta::ModuleWithdraw { id } => (id.as_str(), "module withdraw".to_string()),
                    Delta::ModuleRestore { id } => (id.as_str(), "module restore".to_string()),
                    Delta::OntologyEdgeAdd { parent, child } => {
                        (child.as_str(), format!("ontology edge under {parent}"))
                    }
                };
                dex_telemetry::flight(dex_telemetry::FlightKind::DeltaApplied, target, detail, 0);
            }
            match delta {
                Delta::PoolInsert { instance } => {
                    let concept = instance.concept.clone();
                    self.pool.add(instance.clone());
                    dirty_candidates.extend(self.deps.modules_for_concept(&concept));
                }
                Delta::PoolRemove {
                    concept,
                    occurrence,
                } => {
                    if self.pool.remove_realization(concept, *occurrence).is_some() {
                        dirty_candidates.extend(self.deps.modules_for_concept(concept));
                    }
                }
                Delta::ModuleWithdraw { id } => {
                    self.require_tracked(id);
                    self.universe.catalog.withdraw(id);
                }
                Delta::ModuleRestore { id } => {
                    self.require_tracked(id);
                    self.universe.catalog.restore(id);
                }
                Delta::OntologyEdgeAdd { parent, child } => {
                    // A new leaf under `parent` can only extend the
                    // partition sets of modules annotated at or above it.
                    // (Adding a leaf changes no existing ancestor relation,
                    // so computing the affected set after the mutation is
                    // equivalent to before.)
                    if self
                        .universe
                        .ontology
                        .add_child(child.clone(), parent)
                        .is_ok()
                    {
                        plan_dirty.extend(
                            self.deps
                                .modules_with_input_subsuming(parent, &self.universe.ontology),
                        );
                    }
                }
            }
        }

        // Phase B — refresh plans for ontology-affected modules, diff
        // availability, and maintain the fingerprint index incrementally.
        for &i in &plan_dirty {
            let descriptor = self
                .universe
                .catalog
                .descriptor(&self.ids[i])
                .expect("descriptors survive withdrawal");
            self.deps.set_module(i, descriptor, &self.universe.ontology);
        }
        let mut to_withdrawn: Vec<usize> = Vec::new();
        let mut to_restored: Vec<usize> = Vec::new();
        for i in 0..self.ids.len() {
            let now = self.universe.catalog.is_available(&self.ids[i]);
            if now != self.available[i] {
                self.available[i] = now;
                if now {
                    to_restored.push(i);
                } else {
                    to_withdrawn.push(i);
                }
            }
        }
        // Substitute capture must see the pre-drop matrix.
        for &i in &to_withdrawn {
            self.capture_substitute(i);
            self.index.remove(i);
        }
        let mut fp_changed: BTreeSet<usize> = BTreeSet::new();
        for &i in &plan_dirty {
            if !self.available[i] || to_restored.contains(&i) {
                // Vacant slots stay vacant; restored slots are re-inserted
                // below with the current ontology either way.
                continue;
            }
            let old = self.index.fingerprint(i).copied();
            let descriptor = self
                .universe
                .catalog
                .descriptor(&self.ids[i])
                .expect("available module has a descriptor");
            self.index.insert(i, descriptor, &self.universe.ontology);
            if self.index.fingerprint(i).copied() != old {
                fp_changed.insert(i);
            }
        }
        for &i in &to_restored {
            let descriptor = self
                .universe
                .catalog
                .descriptor(&self.ids[i])
                .expect("restored module has a descriptor");
            self.index.insert(i, descriptor, &self.universe.ontology);
        }

        // Phase C — confirmation stage: candidates (and restored modules,
        // whose frozen reports may have gone stale while withdrawn) are
        // regenerated only if their signature really changed.
        dirty_candidates.extend(plan_dirty.iter().copied());
        let mut regen: BTreeSet<usize> = BTreeSet::new();
        for &i in dirty_candidates.iter().chain(to_restored.iter()) {
            if !self.available[i] {
                continue;
            }
            stats.dirty_candidates += 1;
            let descriptor = self
                .universe
                .catalog
                .descriptor(&self.ids[i])
                .expect("available module has a descriptor");
            let sig = generation_signature(
                descriptor,
                &self.universe.ontology,
                &self.pool,
                &self.config,
            );
            if sig != self.gen_sigs[i] {
                regen.insert(i);
            }
        }
        let regenerated: Vec<(usize, u64, SharedGeneration)> = regen
            .iter()
            .map(|&i| {
                let module = self
                    .universe
                    .catalog
                    .get(&self.ids[i])
                    .expect("regeneration targets available modules");
                let sig = generation_signature(
                    module.descriptor(),
                    &self.universe.ontology,
                    &self.pool,
                    &self.config,
                );
                let report = Arc::new(generate_examples_retrying(
                    module.as_ref(),
                    &self.universe.ontology,
                    &self.pool,
                    &self.config,
                    &self.cache,
                    &retrier,
                ));
                (i, sig, report)
            })
            .collect();
        let mut examples_changed: BTreeSet<usize> = BTreeSet::new();
        for (i, sig, report) in regenerated {
            if generation_outcome_differs(&self.reports[i], &report) {
                examples_changed.insert(i);
            }
            self.reports[i] = report;
            self.gen_sigs[i] = sig;
        }

        // Phase D — verdict maintenance. Slots that left their bucket
        // (withdrawn, or migrated to a different fingerprint) lose every
        // stored pair; migrated and restored slots then recompute rows and
        // columns against their current bucket, while examples-changed
        // slots recompute rows only (strict-mapping verdicts never read the
        // candidate's examples).
        let mut vacated: BTreeSet<usize> = to_withdrawn.iter().copied().collect();
        vacated.extend(fp_changed.iter().copied());
        if !vacated.is_empty() {
            let stale: Vec<(usize, usize)> = self
                .verdicts
                .keys()
                .filter(|(t, c)| vacated.contains(t) || vacated.contains(c))
                .copied()
                .collect();
            stats.dropped_pairs = stale.len();
            for key in stale {
                self.verdicts.remove(&key);
            }
        }
        let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut rejoining: BTreeSet<usize> = to_restored.iter().copied().collect();
        rejoining.extend(fp_changed.iter().copied());
        for &i in &rejoining {
            for &p in self.index.peers(i) {
                if p != i {
                    pairs.insert((i, p));
                    pairs.insert((p, i));
                }
            }
        }
        for &i in &examples_changed {
            for &p in self.index.peers(i) {
                if p != i {
                    pairs.insert((i, p));
                }
            }
        }
        let computed: Vec<((usize, usize), MatchOutcome)> = pairs
            .iter()
            .map(|&(t, c)| ((t, c), self.pair_outcome(t, c, &retrier)))
            .collect();
        for (key, outcome) in computed {
            self.verdicts.insert(key, outcome);
        }

        stats.regenerated_modules = regen.len();
        stats.examples_changed = examples_changed.len();
        stats.fingerprints_changed = fp_changed.len();
        stats.recomputed_pairs = pairs.len();
        stats.carried_forward = self.verdicts.len() - pairs.len();
        for i in 0..self.ids.len() {
            if self.available[i] {
                stats.cells_total += self.deps.cells(i);
            }
        }
        for &i in &regen {
            stats.cells_dirty += self.deps.cells(i);
        }
        stats.publish_telemetry();
        stats
    }

    fn require_tracked(&self, id: &ModuleId) {
        assert!(
            self.slot_of.contains_key(id),
            "delta references `{id}`, which was not tracked at bootstrap"
        );
    }

    /// One pair's outcome, byte-identical to `MatchSession::compare_report`
    /// semantics: the target's generation error takes precedence, then the
    /// strict aligned-example comparison (whose own mapping/emptiness error
    /// precedence lives inside `match_against_examples_retrying`).
    fn pair_outcome(&self, t: usize, c: usize, retrier: &Retrier) -> MatchOutcome {
        let target = self
            .universe
            .catalog
            .get(&self.ids[t])
            .expect("compared pairs are available");
        let candidate = self
            .universe
            .catalog
            .get(&self.ids[c])
            .expect("compared pairs are available");
        match self.reports[t].as_ref() {
            Err(e) => MatchOutcome::Incomparable(e.to_string()),
            Ok(report) => match match_against_examples_retrying(
                target.descriptor(),
                &report.examples,
                candidate.as_ref(),
                &self.universe.ontology,
                MappingMode::Strict,
                &self.cache,
                retrier,
            ) {
                Ok(verdict) => MatchOutcome::Verdict(verdict),
                Err(e) => MatchOutcome::Incomparable(e.to_string()),
            },
        }
    }

    /// Ranks slot `i`'s current row verdicts into a carried-forward
    /// substitute, using the §6 study's own ordering.
    fn capture_substitute(&mut self, i: usize) {
        let id = self.ids[i].clone();
        let mut best: Option<(ModuleId, MatchVerdict)> = None;
        let mut compared = 0usize;
        for ((_, c), outcome) in self.verdicts.range((i, 0)..=(i, usize::MAX)) {
            if let MatchOutcome::Verdict(v) = outcome {
                compared += 1;
                best = pick_better_substitute(best, (self.ids[*c].clone(), *v));
            }
        }
        let examples = match self.reports[i].as_ref() {
            Ok(report) => report.examples.len(),
            Err(_) => 0,
        };
        self.substitutes.insert(
            id.clone(),
            LegacyMatch {
                module: id,
                reconstructed_examples: examples,
                candidates_compared: compared,
                best: best.filter(|(_, v)| v.is_usable()),
            },
        );
    }

    /// The maintained universe (deltas applied).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The maintained pool (deltas applied).
    pub fn pool(&self) -> &InstancePool {
        &self.pool
    }

    /// The tracked module ids, in slot order.
    pub fn tracked_ids(&self) -> &[ModuleId] {
        &self.ids
    }

    /// Successful generation reports of the currently available modules —
    /// the same map a cold `generate_fleet` over the present state returns.
    pub fn reports(&self) -> BTreeMap<ModuleId, GenerationReport> {
        let mut out = BTreeMap::new();
        for (i, id) in self.ids.iter().enumerate() {
            if !self.available[i] {
                continue;
            }
            if let Ok(report) = self.reports[i].as_ref() {
                out.insert(id.clone(), report.clone());
            }
        }
        out
    }

    /// Materializes the dense matching matrix over the currently available
    /// modules — byte-identical to `match_pairs_blocked` over the present
    /// state. Compared pairs come from the maintained verdict store;
    /// fingerprint-pruned pairs are synthesized invocation-free with the
    /// same error precedence as `MatchSession::pruned_report`.
    pub fn matrix(&self) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
        let slots: Vec<usize> = (0..self.ids.len()).filter(|&i| self.available[i]).collect();
        let mut out = BTreeMap::new();
        for &t in &slots {
            let examples = match self.reports[t].as_ref() {
                Ok(report) => report.examples.len(),
                Err(_) => 0,
            };
            for &c in &slots {
                if t == c {
                    continue;
                }
                let outcome = if self.index.is_comparable(t, c) {
                    self.verdicts
                        .get(&(t, c))
                        .expect("comparable pairs are maintained")
                        .clone()
                } else {
                    match self.reports[t].as_ref() {
                        Err(e) => MatchOutcome::Incomparable(e.to_string()),
                        Ok(_) => {
                            let mapping = map_parameters(
                                self.universe
                                    .catalog
                                    .descriptor(&self.ids[t])
                                    .expect("available module has a descriptor"),
                                self.universe
                                    .catalog
                                    .descriptor(&self.ids[c])
                                    .expect("available module has a descriptor"),
                                &self.universe.ontology,
                                MappingMode::Strict,
                            );
                            match mapping {
                                Err(e) => MatchOutcome::Incomparable(e.to_string()),
                                Ok(_) => unreachable!(
                                    "incompatible fingerprints admit no strict mapping"
                                ),
                            }
                        }
                    }
                };
                out.insert(
                    (self.ids[t].clone(), self.ids[c].clone()),
                    MatchReport {
                        target: self.ids[t].clone(),
                        candidate: self.ids[c].clone(),
                        outcome,
                        examples,
                    },
                );
            }
        }
        out
    }

    /// The carried-forward substitute for a withdrawn tracked module, if
    /// its last-known row held a usable verdict.
    pub fn substitute_for(&self, id: &ModuleId) -> Option<&(ModuleId, MatchVerdict)> {
        self.substitutes.get(id).and_then(|m| m.best.as_ref())
    }

    /// The repair-layer view of every withdrawal seen so far: a
    /// [`MatchingStudy`] assembled from carried-forward verdicts, zero
    /// replay invocations.
    pub fn matching_study(&self) -> MatchingStudy {
        MatchingStudy::from_carried(self.substitutes.values().cloned())
    }

    /// The engine's warm invocation cache (shared across bootstrap and
    /// every apply).
    pub fn invocation_cache(&self) -> &InvocationCache {
        &self.cache
    }

    /// Whether `id` is tracked, and if so whether it is currently
    /// available.
    pub fn availability(&self, id: &ModuleId) -> Option<bool> {
        self.slot_of.get(id).map(|&i| self.available[i])
    }

    /// Tracked modules currently available.
    pub fn available_count(&self) -> usize {
        self.available.iter().filter(|&&a| a).count()
    }

    /// The maintained annotation of one tracked module: its availability
    /// plus the generation outcome in force (frozen at withdrawal time for
    /// withdrawn modules).
    pub fn annotation(
        &self,
        id: &ModuleId,
    ) -> Option<(bool, &Result<GenerationReport, GenerationError>)> {
        let &i = self.slot_of.get(id)?;
        Some((self.available[i], &*self.reports[i]))
    }

    /// The fingerprint bucket key of an available tracked module — the
    /// coalescing key `dexd` groups substitute lookups under, so lookups
    /// sharing a bucket are answered in one matrix pass. `None` for
    /// withdrawn or untracked modules.
    pub fn bucket_key(&self, id: &ModuleId) -> Option<u64> {
        let &i = self.slot_of.get(id)?;
        if !self.available[i] {
            return None;
        }
        self.index.fingerprint(i).map(|fp| fp.stable_hash())
    }

    /// Ranks the current substitutes for a tracked module, best first,
    /// using the §6 study's ordering ([`pick_better_substitute`]).
    /// Available modules are answered from their live row verdicts;
    /// withdrawn modules return their carried-forward capture (best only —
    /// that is all that is kept at withdrawal).
    pub fn substitutes(&self, id: &ModuleId) -> Option<SubstituteAnswer> {
        let &i = self.slot_of.get(id)?;
        if !self.available[i] {
            let carried = self.substitutes.get(id)?;
            return Some(SubstituteAnswer {
                module: id.clone(),
                available: false,
                candidates_compared: carried.candidates_compared,
                ranked: carried.best.clone().into_iter().collect(),
            });
        }
        let mut compared = 0usize;
        let mut ranked: Vec<(ModuleId, MatchVerdict)> = Vec::new();
        for ((_, c), outcome) in self.verdicts.range((i, 0)..=(i, usize::MAX)) {
            if let MatchOutcome::Verdict(v) = outcome {
                compared += 1;
                if v.is_usable() {
                    ranked.push((self.ids[*c].clone(), *v));
                }
            }
        }
        // Descending study rank; ties break toward the smaller id, which is
        // exactly what the incumbent-wins fold over ascending slot order
        // produces, so `ranked.first()` agrees with `pick_better_substitute`.
        ranked.sort_by(|a, b| {
            substitute_rank(&b.1)
                .partial_cmp(&substitute_rank(&a.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        Some(SubstituteAnswer {
            module: id.clone(),
            available: true,
            candidates_compared: compared,
            ranked,
        })
    }
}

/// The §6 study's candidate ordering as a sort key (see
/// [`pick_better_substitute`]).
fn substitute_rank(v: &MatchVerdict) -> (u8, f64) {
    match v {
        MatchVerdict::Equivalent { .. } => (2, 1.0),
        MatchVerdict::Overlapping { agreeing, compared } => {
            (1, *agreeing as f64 / *compared as f64)
        }
        MatchVerdict::Disjoint { .. } => (0, 0.0),
    }
}

/// One substitute lookup, answered from live pipeline state with zero
/// replay invocations.
#[derive(Debug, Clone)]
pub struct SubstituteAnswer {
    /// The module the lookup targeted.
    pub module: ModuleId,
    /// Whether it is currently available (live row scan) or withdrawn
    /// (carried-forward capture).
    pub available: bool,
    /// Verdict-bearing comparisons behind the ranking.
    pub candidates_compared: usize,
    /// Usable candidates, best first.
    pub ranked: Vec<(ModuleId, MatchVerdict)>,
}

impl SubstituteAnswer {
    /// The top-ranked candidate, if any verdict was usable.
    pub fn best(&self) -> Option<&(ModuleId, MatchVerdict)> {
        self.ranked.first()
    }
}

/// Whether two generation outcomes differ in anything a strict-mapping
/// verdict can read: the example set, or the rendered generation error.
fn generation_outcome_differs(old: &SharedGeneration, new: &SharedGeneration) -> bool {
    match (old.as_ref(), new.as_ref()) {
        (Ok(a), Ok(b)) => a.examples != b.examples,
        (Err(a), Err(b)) => a.to_string() != b.to_string(),
        _ => true,
    }
}
