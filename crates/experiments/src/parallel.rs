//! Parallel data-example generation across a module population.
//!
//! Generation is embarrassingly parallel per module — modules are
//! `Send + Sync` black boxes and the pool/ontology are shared read-only —
//! so the experiment harness fans out over `std::thread::scope` without
//! extra dependencies. Results are returned in deterministic (sorted id)
//! order regardless of scheduling.

use dex_core::{generate_examples, GenerationConfig, GenerationReport};
use dex_modules::ModuleId;
use dex_pool::InstancePool;
use dex_universe::Universe;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Generates reports for every available module of the universe, fanning
/// out over `threads` workers (values below 1 are clamped to 1).
///
/// Panics if generation fails for any module, like the serial experiment
/// context does — the shipped universe is expected to be fully generable.
pub fn generate_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<ModuleId, GenerationReport> {
    let ids = universe.available_ids();
    let cursor = AtomicUsize::new(0);
    let threads = threads.max(1).min(ids.len().max(1));

    let mut results: Vec<Option<(ModuleId, GenerationReport)>> = Vec::new();
    results.resize_with(ids.len(), || None);
    let slots: Vec<std::sync::Mutex<Option<(ModuleId, GenerationReport)>>> =
        results.into_iter().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                let id = &ids[i];
                let module = universe.catalog.get(id).expect("available");
                let report =
                    generate_examples(module.as_ref(), &universe.ontology, pool, config)
                        .unwrap_or_else(|e| panic!("{id}: {e}"));
                *slots[i].lock().expect("no poisoning") = Some((id.clone(), report));
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("no poisoning").expect("filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_pool::build_synthetic_pool;

    #[test]
    fn parallel_equals_serial() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();

        let parallel = generate_all_parallel(&universe, &pool, &config, 8);
        assert_eq!(parallel.len(), 252);
        // Spot-check against serial generation for a sample of modules.
        for id in universe.available_ids().into_iter().step_by(17) {
            let module = universe.catalog.get(&id).unwrap();
            let serial =
                generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
            assert_eq!(parallel[&id].examples, serial.examples, "{id}");
        }
    }

    #[test]
    fn single_thread_also_works() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 1);
        let config = GenerationConfig::default();
        let reports = generate_all_parallel(&universe, &pool, &config, 1);
        assert_eq!(reports.len(), 252);
    }
}
