//! Parallel data-example generation and all-pairs matching.
//!
//! Both workloads are embarrassingly parallel — modules are `Send + Sync`
//! black boxes and the pool/ontology are shared read-only — so the experiment
//! harness fans out over `std::thread::scope` without extra dependencies.
//! Results are returned in deterministic (sorted key) order regardless of
//! scheduling.

use dex_core::{
    generate_examples_cached, GenerationConfig, GenerationReport, MatchReport, MatchSession,
};
use dex_modules::{InvocationCache, ModuleId};
use dex_pool::InstancePool;
use dex_universe::Universe;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Generates reports for every available module of the universe, fanning
/// out over `threads` workers (values below 1 are clamped to 1).
///
/// Each worker owns a disjoint `&mut` chunk of the results buffer, so
/// collection is lock-free — no per-slot mutex, no channel, no allocation
/// beyond the output itself.
///
/// Panics if generation fails for any module, like the serial experiment
/// context does — the shipped universe is expected to be fully generable.
pub fn generate_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<ModuleId, GenerationReport> {
    let ids = universe.available_ids();
    let threads = threads.max(1).min(ids.len().max(1));
    let _span = dex_telemetry::span("parallel.generate_all");
    dex_telemetry::gauge_set("dex.parallel.threads", threads as i64);
    let chunk = ids.len().div_ceil(threads);

    let mut results: Vec<Option<(ModuleId, GenerationReport)>> = Vec::new();
    results.resize_with(ids.len(), || None);

    // One invocation memo across all workers: distinct modules never share a
    // key, but repeated experiment phases over the same universe do, and the
    // cache's stats land in TELEMETRY.json for every instrumented run.
    let invocations = InvocationCache::new();
    std::thread::scope(|scope| {
        for (id_chunk, out_chunk) in ids.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let invocations = &invocations;
            scope.spawn(move || {
                for (id, slot) in id_chunk.iter().zip(out_chunk) {
                    let module = universe.catalog.get(id).expect("available");
                    let report = generate_examples_cached(
                        module.as_ref(),
                        &universe.ontology,
                        pool,
                        config,
                        invocations,
                    )
                    .unwrap_or_else(|e| panic!("{id}: {e}"));
                    *slot = Some((id.clone(), report));
                }
            });
        }
    });
    if dex_telemetry::is_enabled() {
        invocations.publish_telemetry();
    }

    results
        .into_iter()
        .map(|slot| slot.expect("filled"))
        .collect()
}

/// Matches every ordered pair of distinct modules in `ids` against each
/// other, fanning the O(N²) comparisons out over `threads` workers.
///
/// Target-side example generation goes through one shared [`MatchSession`],
/// so each module is generated once for the whole run instead of once per
/// pair. Workers claim pairs off an atomic cursor (comparison costs vary
/// wildly between trivially-incomparable and fully-replayed pairs) and ship
/// reports back over a channel; the final `BTreeMap` keying makes the result
/// independent of scheduling.
pub fn match_pairs_parallel(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    let pairs: Vec<(usize, usize)> = (0..ids.len())
        .flat_map(|t| (0..ids.len()).map(move |c| (t, c)))
        .filter(|(t, c)| t != c)
        .collect();
    let threads = threads.max(1).min(pairs.len().max(1));
    let _span = dex_telemetry::span("parallel.match_pairs");
    dex_telemetry::gauge_set("dex.parallel.threads", threads as i64);
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<((ModuleId, ModuleId), MatchReport)>();

    let matrix = std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let session = &session;
            let pairs = &pairs;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (t, c) = pairs[i];
                let target = universe.catalog.get(&ids[t]).expect("available");
                let candidate = universe.catalog.get(&ids[c]).expect("available");
                let report = session.compare_report(target.as_ref(), candidate.as_ref());
                let key = (ids[t].clone(), ids[c].clone());
                tx.send((key, report)).expect("collector alive");
            });
        }
        drop(tx);
        rx.into_iter().collect()
    });
    if dex_telemetry::is_enabled() {
        let stats = session.cache_stats();
        dex_telemetry::gauge_set("dex.match.cache_entries", stats.entries as i64);
        dex_telemetry::gauge_set(
            "dex.match.cache_bytes",
            stats.memoized_bytes_estimate as i64,
        );
        // Invocation-level cache effectiveness (hits/misses/entries) for the
        // whole all-pairs run — the matrix shares one memo across threads.
        session.invocation_cache().publish_telemetry();
    }
    matrix
}

/// [`match_pairs_parallel`] over every available module of the universe: the
/// registry-wide all-pairs matching matrix.
pub fn match_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    match_pairs_parallel(universe, &universe.available_ids(), pool, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{compare_modules, generate_examples, MatchOutcome};
    use dex_pool::build_synthetic_pool;

    #[test]
    fn parallel_equals_serial() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();

        let parallel = generate_all_parallel(&universe, &pool, &config, 8);
        assert_eq!(parallel.len(), 252);
        // Spot-check against serial generation for a sample of modules.
        for id in universe.available_ids().into_iter().step_by(17) {
            let module = universe.catalog.get(&id).unwrap();
            let serial =
                generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
            assert_eq!(parallel[&id].examples, serial.examples, "{id}");
        }
    }

    #[test]
    fn single_thread_also_works() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 1);
        let config = GenerationConfig::default();
        let reports = generate_all_parallel(&universe, &pool, &config, 1);
        assert_eq!(reports.len(), 252);
    }

    #[test]
    fn all_pairs_matches_serial_comparisons() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();
        // A modest slice keeps the quadratic test quick; every 11th module
        // still crosses all five categories.
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(11).collect();

        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(matrix.len(), ids.len() * (ids.len() - 1));

        for ((t, c), report) in &matrix {
            assert_eq!(&report.target, t);
            assert_eq!(&report.candidate, c);
            let target = universe.catalog.get(t).unwrap();
            let candidate = universe.catalog.get(c).unwrap();
            let serial = compare_modules(
                target.as_ref(),
                candidate.as_ref(),
                &universe.ontology,
                &pool,
                &config,
            );
            match (&report.outcome, serial) {
                (MatchOutcome::Verdict(v), Ok(w)) => assert_eq!(*v, w, "{t} vs {c}"),
                (MatchOutcome::Incomparable(msg), Err(e)) => {
                    assert_eq!(msg, &e.to_string(), "{t} vs {c}")
                }
                (got, want) => panic!("{t} vs {c}: {got:?} but serial said {want:?}"),
            }
        }
    }

    #[test]
    fn all_pairs_is_deterministic_across_thread_counts() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 7);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(23).collect();
        let one = match_pairs_parallel(&universe, &ids, &pool, &config, 1);
        let many = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(one, many);
    }
}
