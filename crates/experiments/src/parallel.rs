//! Parallel data-example generation and all-pairs matching.
//!
//! Both workloads are embarrassingly parallel — modules are `Send + Sync`
//! black boxes and the pool/ontology are shared read-only — so the experiment
//! harness fans out over `std::thread::scope` without extra dependencies.
//! Results are returned in deterministic (sorted key) order regardless of
//! scheduling.

use dex_core::{
    generate_examples_retrying, GenerationConfig, GenerationReport, MatchOutcome, MatchReport,
    MatchSession,
};
use dex_modules::{InvocationCache, ModuleId, Retrier};
use dex_pool::InstancePool;
use dex_universe::Universe;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The outcome of a degradation-tolerant fleet generation: per-module
/// reports for everything that generated, failure records for everything
/// that did not.
#[derive(Debug, Default)]
pub struct GenerationFleet {
    /// Reports for modules whose generation succeeded, in module-id order.
    pub reports: BTreeMap<ModuleId, GenerationReport>,
    /// `(module, rendered error)` for each module whose generation failed
    /// even after retries — the run degraded around them instead of dying.
    pub failures: Vec<(ModuleId, String)>,
}

/// Generates reports for every available module of the universe, fanning
/// out over `threads` workers (values below 1 are clamped to 1).
///
/// Each worker owns a disjoint `&mut` chunk of the results buffer, so
/// collection is lock-free — no per-slot mutex, no channel, no allocation
/// beyond the output itself.
///
/// Panics if generation fails for any module, like the serial experiment
/// context does — the shipped universe is expected to be fully generable.
/// [`generate_fleet`] is the graceful variant.
pub fn generate_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<ModuleId, GenerationReport> {
    let retrier = Retrier::new(config.retry);
    generate_fleet(universe, pool, config, threads, &retrier, true).reports
}

/// [`generate_all_parallel`] with explicit fault handling: transiently
/// failing invocations are retried through the shared `retrier`, and a
/// module whose generation still fails is *recorded and skipped* (the paper
/// pipeline keeps annotating the modules it can reach) — unless `fail_fast`
/// is set, which restores the panic-on-first-failure contract.
pub fn generate_fleet(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
    retrier: &Retrier,
    fail_fast: bool,
) -> GenerationFleet {
    let ids = universe.available_ids();
    let threads = threads.max(1).min(ids.len().max(1));
    let _span = dex_telemetry::span("parallel.generate_all");
    dex_telemetry::gauge_set("dex.parallel.threads", threads as i64);
    let chunk = ids.len().div_ceil(threads);

    let mut results: Vec<Option<(ModuleId, Result<GenerationReport, String>)>> = Vec::new();
    results.resize_with(ids.len(), || None);

    // One invocation memo across all workers: distinct modules never share a
    // key, but repeated experiment phases over the same universe do, and the
    // cache's stats land in TELEMETRY.json for every instrumented run.
    let invocations = InvocationCache::new();
    std::thread::scope(|scope| {
        for (id_chunk, out_chunk) in ids.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let invocations = &invocations;
            scope.spawn(move || {
                for (id, slot) in id_chunk.iter().zip(out_chunk) {
                    let Some(module) = universe.catalog.get(id) else {
                        if fail_fast {
                            panic!("{id}: module withdrawn mid-run");
                        }
                        *slot = Some((id.clone(), Err("module withdrawn mid-run".to_string())));
                        continue;
                    };
                    let outcome = generate_examples_retrying(
                        module.as_ref(),
                        &universe.ontology,
                        pool,
                        config,
                        invocations,
                        retrier,
                    );
                    *slot = Some(match outcome {
                        Ok(report) => (id.clone(), Ok(report)),
                        Err(e) if fail_fast => panic!("{id}: {e}"),
                        Err(e) => (id.clone(), Err(e.to_string())),
                    });
                }
            });
        }
    });
    if dex_telemetry::is_enabled() {
        invocations.publish_telemetry();
    }

    let mut fleet = GenerationFleet::default();
    for (id, outcome) in results.into_iter().map(|slot| slot.expect("filled")) {
        match outcome {
            Ok(report) => {
                fleet.reports.insert(id, report);
            }
            Err(error) => {
                if dex_telemetry::is_enabled() {
                    dex_telemetry::counter_add("dex.parallel.generation_failures", 1);
                }
                fleet.failures.push((id, error));
            }
        }
    }
    fleet
}

/// Matches every ordered pair of distinct modules in `ids` against each
/// other, fanning the O(N²) comparisons out over `threads` workers.
///
/// Target-side example generation goes through one shared [`MatchSession`],
/// so each module is generated once for the whole run instead of once per
/// pair. Workers claim pairs off an atomic cursor (comparison costs vary
/// wildly between trivially-incomparable and fully-replayed pairs) and ship
/// reports back over a channel; the final `BTreeMap` keying makes the result
/// independent of scheduling.
pub fn match_pairs_parallel(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    let pairs: Vec<(usize, usize)> = (0..ids.len())
        .flat_map(|t| (0..ids.len()).map(move |c| (t, c)))
        .filter(|(t, c)| t != c)
        .collect();
    let threads = threads.max(1).min(pairs.len().max(1));
    let _span = dex_telemetry::span("parallel.match_pairs");
    dex_telemetry::gauge_set("dex.parallel.threads", threads as i64);
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<((ModuleId, ModuleId), MatchReport)>();

    let matrix = std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let session = &session;
            let pairs = &pairs;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (t, c) = pairs[i];
                let key = (ids[t].clone(), ids[c].clone());
                // A module withdrawn between id listing and comparison is an
                // incomparable pair, not a dead sweep: record it as data and
                // keep draining the cursor.
                let report = match (universe.catalog.get(&ids[t]), universe.catalog.get(&ids[c])) {
                    (Some(target), Some(candidate)) => {
                        session.compare_report(target.as_ref(), candidate.as_ref())
                    }
                    (target, _) => {
                        let gone = if target.is_none() { &ids[t] } else { &ids[c] };
                        MatchReport {
                            target: ids[t].clone(),
                            candidate: ids[c].clone(),
                            outcome: MatchOutcome::Incomparable(format!(
                                "module `{gone}` is unavailable"
                            )),
                            examples: 0,
                        }
                    }
                };
                tx.send((key, report)).expect("collector alive");
            });
        }
        drop(tx);
        rx.into_iter().collect()
    });
    if dex_telemetry::is_enabled() {
        let stats = session.cache_stats();
        dex_telemetry::gauge_set("dex.match.cache_entries", stats.entries as i64);
        dex_telemetry::gauge_set(
            "dex.match.cache_bytes",
            stats.memoized_bytes_estimate as i64,
        );
        // Invocation-level cache effectiveness (hits/misses/entries) for the
        // whole all-pairs run — the matrix shares one memo across threads.
        session.invocation_cache().publish_telemetry();
    }
    matrix
}

/// [`match_pairs_parallel`] over every available module of the universe: the
/// registry-wide all-pairs matching matrix.
pub fn match_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    match_pairs_parallel(universe, &universe.available_ids(), pool, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{compare_modules, generate_examples, MatchOutcome};
    use dex_pool::build_synthetic_pool;

    #[test]
    fn parallel_equals_serial() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();

        let parallel = generate_all_parallel(&universe, &pool, &config, 8);
        assert_eq!(parallel.len(), 252);
        // Spot-check against serial generation for a sample of modules.
        for id in universe.available_ids().into_iter().step_by(17) {
            let module = universe.catalog.get(&id).unwrap();
            let serial =
                generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
            assert_eq!(parallel[&id].examples, serial.examples, "{id}");
        }
    }

    #[test]
    fn single_thread_also_works() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 1);
        let config = GenerationConfig::default();
        let reports = generate_all_parallel(&universe, &pool, &config, 1);
        assert_eq!(reports.len(), 252);
    }

    #[test]
    fn fleet_degrades_around_a_withdrawn_module_instead_of_dying() {
        let mut universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 5);
        let config = GenerationConfig::default();
        let victim = universe.available_ids()[0].clone();

        let baseline = generate_all_parallel(&universe, &pool, &config, 4);
        universe.catalog.withdraw(&victim);
        let retrier = Retrier::new(dex_modules::RetryPolicy::transient(2));
        let fleet = generate_fleet(&universe, &pool, &config, 4, &retrier, false);
        assert_eq!(fleet.reports.len(), baseline.len() - 1);
        assert!(!fleet.reports.contains_key(&victim));
        assert!(
            fleet.failures.is_empty(),
            "withdrawn ids drop out of available_ids(), so nothing failed"
        );
        for (id, report) in &fleet.reports {
            assert_eq!(report.examples, baseline[id].examples, "{id}");
        }

        // The matching sweep likewise records the withdrawn module as
        // incomparable instead of panicking.
        let ids = vec![victim.clone(), fleet.reports.keys().next().unwrap().clone()];
        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, 2);
        assert_eq!(matrix.len(), 2);
        for report in matrix.values() {
            match &report.outcome {
                MatchOutcome::Incomparable(msg) => {
                    assert!(msg.contains("unavailable"), "{msg}")
                }
                other => panic!("expected incomparable, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_pairs_matches_serial_comparisons() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();
        // A modest slice keeps the quadratic test quick; every 11th module
        // still crosses all five categories.
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(11).collect();

        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(matrix.len(), ids.len() * (ids.len() - 1));

        for ((t, c), report) in &matrix {
            assert_eq!(&report.target, t);
            assert_eq!(&report.candidate, c);
            let target = universe.catalog.get(t).unwrap();
            let candidate = universe.catalog.get(c).unwrap();
            let serial = compare_modules(
                target.as_ref(),
                candidate.as_ref(),
                &universe.ontology,
                &pool,
                &config,
            );
            match (&report.outcome, serial) {
                (MatchOutcome::Verdict(v), Ok(w)) => assert_eq!(*v, w, "{t} vs {c}"),
                (MatchOutcome::Incomparable(msg), Err(e)) => {
                    assert_eq!(msg, &e.to_string(), "{t} vs {c}")
                }
                (got, want) => panic!("{t} vs {c}: {got:?} but serial said {want:?}"),
            }
        }
    }

    #[test]
    fn all_pairs_is_deterministic_across_thread_counts() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 7);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(23).collect();
        let one = match_pairs_parallel(&universe, &ids, &pool, &config, 1);
        let many = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(one, many);
    }
}
