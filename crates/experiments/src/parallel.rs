//! Parallel data-example generation and all-pairs matching.
//!
//! Both workloads are embarrassingly parallel — modules are `Send + Sync`
//! black boxes and the pool/ontology are shared read-only — so the experiment
//! harness fans out over `std::thread::scope` without extra dependencies.
//! Results are returned in deterministic (sorted key) order regardless of
//! scheduling.

use dex_core::{
    generate_examples_retrying, BlockingStats, CachedGeneration, FingerprintIndex,
    GenerationConfig, GenerationReport, MatchOutcome, MatchReport, MatchSession, MatchVerdict,
};
use dex_modules::{InvocationCache, ModuleId, Retrier, SharedModule};
use dex_pool::InstancePool;
use dex_universe::Universe;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The outcome of a degradation-tolerant fleet generation: per-module
/// reports for everything that generated, failure records for everything
/// that did not.
#[derive(Debug, Default)]
pub struct GenerationFleet {
    /// Reports for modules whose generation succeeded, in module-id order.
    pub reports: BTreeMap<ModuleId, GenerationReport>,
    /// `(module, rendered error)` for each module whose generation failed
    /// even after retries — the run degraded around them instead of dying.
    pub failures: Vec<(ModuleId, String)>,
}

/// Generates reports for every available module of the universe, fanning
/// out over `threads` workers (values below 1 are clamped to 1).
///
/// Each worker owns a disjoint `&mut` chunk of the results buffer, so
/// collection is lock-free — no per-slot mutex, no channel, no allocation
/// beyond the output itself.
///
/// Panics if generation fails for any module, like the serial experiment
/// context does — the shipped universe is expected to be fully generable.
/// [`generate_fleet`] is the graceful variant.
pub fn generate_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<ModuleId, GenerationReport> {
    let retrier = Retrier::new(config.retry);
    generate_fleet(universe, pool, config, threads, &retrier, true).reports
}

/// [`generate_all_parallel`] with explicit fault handling: transiently
/// failing invocations are retried through the shared `retrier`, and a
/// module whose generation still fails is *recorded and skipped* (the paper
/// pipeline keeps annotating the modules it can reach) — unless `fail_fast`
/// is set, which restores the panic-on-first-failure contract.
pub fn generate_fleet(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
    retrier: &Retrier,
    fail_fast: bool,
) -> GenerationFleet {
    let ids = universe.available_ids();
    let threads = threads.max(1).min(ids.len().max(1));
    let _span = dex_telemetry::span("parallel.generate_all");
    dex_telemetry::gauge_set("dex.parallel.threads", threads as i64);
    let chunk = ids.len().div_ceil(threads);

    let mut results: Vec<Option<(ModuleId, Result<GenerationReport, String>)>> = Vec::new();
    results.resize_with(ids.len(), || None);

    // One invocation memo across all workers: distinct modules never share a
    // key, but repeated experiment phases over the same universe do, and the
    // cache's stats land in TELEMETRY.json for every instrumented run.
    let invocations = InvocationCache::new();
    let ctx = dex_telemetry::current_context();
    std::thread::scope(|scope| {
        for (id_chunk, out_chunk) in ids.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let invocations = &invocations;
            scope.spawn(move || {
                let _worker = ctx.span("parallel.generate_worker");
                for (id, slot) in id_chunk.iter().zip(out_chunk) {
                    let Some(module) = universe.catalog.get(id) else {
                        if fail_fast {
                            panic!("{id}: module withdrawn mid-run");
                        }
                        *slot = Some((id.clone(), Err("module withdrawn mid-run".to_string())));
                        continue;
                    };
                    let outcome = generate_examples_retrying(
                        module.as_ref(),
                        &universe.ontology,
                        pool,
                        config,
                        invocations,
                        retrier,
                    );
                    *slot = Some(match outcome {
                        Ok(report) => (id.clone(), Ok(report)),
                        Err(e) if fail_fast => panic!("{id}: {e}"),
                        Err(e) => (id.clone(), Err(e.to_string())),
                    });
                }
            });
        }
    });
    if dex_telemetry::is_enabled() {
        invocations.publish_telemetry();
    }

    let mut fleet = GenerationFleet::default();
    for (id, outcome) in results.into_iter().map(|slot| slot.expect("filled")) {
        match outcome {
            Ok(report) => {
                fleet.reports.insert(id, report);
            }
            Err(error) => {
                if dex_telemetry::is_enabled() {
                    dex_telemetry::counter_add("dex.parallel.generation_failures", 1);
                }
                if dex_telemetry::flight_on() {
                    dex_telemetry::flight(
                        dex_telemetry::FlightKind::ModuleWithdrawn,
                        id.as_str(),
                        error.clone(),
                        0,
                    );
                }
                fleet.failures.push((id, error));
            }
        }
    }
    if !fleet.failures.is_empty() {
        // Graceful degradation just withdrew module(s): capture the flight
        // window (fault injections, retries, exhaustion) as a post-mortem.
        dex_telemetry::dump_flight("module withdrawn");
    }
    fleet
}

/// Tuning for the batched blocked matching executor.
///
/// The constants encode a crossover *measured* by
/// `crates/bench/src/bin/bench_blocking.rs` (methodology in DESIGN.md §12):
/// below [`BatchConfig::SERIAL_CUTOFF_PAIRS`] compared pairs, thread spawn
/// and claim traffic cost more than the comparisons themselves, so the
/// executor runs on the calling thread; above it, workers claim
/// [`BatchConfig::CHUNK_PAIRS`] pairs per atomic `fetch_add` and buffer
/// results in worker-local vectors (no channel, no per-pair
/// synchronization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads for the batched phase (values below 1 clamp to 1).
    pub threads: usize,
    /// Compared-pair count at or below which the executor stays serial.
    pub serial_cutoff: usize,
    /// Pairs claimed per atomic fetch — coarse enough to amortize the
    /// claim, fine enough to balance uneven buckets across workers.
    pub chunk: usize,
}

impl BatchConfig {
    /// Compared-pair count below which fan-out cannot pay for itself: a
    /// sub-512-pair sweep finishes in well under a millisecond warm, which
    /// is the same order as spawning and joining the workers, so the guard
    /// keeps those batches on the calling thread. `bench_blocking`'s
    /// crossover sweep re-measures this per host and records a **non-null**
    /// `measured_crossover_pairs` in BENCH_blocking.json: the first sweep
    /// size where batched actually beat serial when one exists, otherwise a
    /// spawn-overhead model (`crossover_basis: "overhead_model"`) — measured
    /// scope-spawn/join cost divided by the warm per-pair cost, scaled by
    /// the fraction of work the extra workers take over. On a single-core
    /// host an observed crossover is physically impossible (the batched
    /// path degenerates to the `threads == 1` serial fallback), which is
    /// exactly when the model applies. The bench asserts this shipped
    /// constant is at or above the derived value, so the serial guard can
    /// only ever err on the safe (serial) side; the per-pair channel
    /// executor this replaced lost at every size, see the
    /// `perpair_parallel_ms` column.
    pub const SERIAL_CUTOFF_PAIRS: usize = 512;
    /// Claim granularity: 64 pairs ≈ tens of microseconds of warm-cache
    /// work per claim, three orders of magnitude over the atomic itself.
    pub const CHUNK_PAIRS: usize = 64;

    /// The measured defaults with an explicit thread count.
    pub fn with_threads(threads: usize) -> BatchConfig {
        BatchConfig {
            threads,
            serial_cutoff: Self::SERIAL_CUTOFF_PAIRS,
            chunk: Self::CHUNK_PAIRS,
        }
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        BatchConfig::with_threads(threads)
    }
}

/// A dense blocked matching run: the full `n·(n−1)` report matrix plus the
/// blocking ledger explaining how little of it required invocation.
#[derive(Debug, Clone)]
pub struct BlockedMatchMatrix {
    /// Every ordered pair's report, keyed `(target, candidate)` — including
    /// pruned and unavailable pairs, so the matrix is indistinguishable from
    /// an exhaustive sweep.
    pub reports: BTreeMap<(ModuleId, ModuleId), MatchReport>,
    /// How the sweep was spent: compared vs pruned vs unavailable.
    pub stats: BlockingStats,
}

/// Verdict tallies of a blocked matching run without materializing the
/// `n·(n−1)` report matrix — the only feasible mode at 25k modules, where
/// the dense matrix would hold 625M reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedMatchSummary {
    /// Pairs judged equivalent.
    pub equivalent: usize,
    /// Pairs judged overlapping.
    pub overlapping: usize,
    /// Pairs judged disjoint.
    pub disjoint: usize,
    /// Incomparable pairs — compared-but-unmappable, fingerprint-pruned,
    /// and unavailable alike, so the four tallies always sum to
    /// `stats.pairs_total` and agree with an exhaustive sweep's tally.
    pub incomparable: usize,
    /// How the sweep was spent: compared vs pruned vs unavailable.
    pub stats: BlockingStats,
}

impl BlockedMatchSummary {
    /// `(equivalent, overlapping, disjoint, incomparable)` as one tuple.
    pub fn tallies(&self) -> (usize, usize, usize, usize) {
        (
            self.equivalent,
            self.overlapping,
            self.disjoint,
            self.incomparable,
        )
    }
}

/// Builds the blocking plan for `ids`: fingerprint index, the compared-pair
/// worklist, and the stats ledger. Withdrawn ids get no fingerprint and
/// land in the `pairs_unavailable` bucket.
///
/// The worklist is interleaved round-robin across buckets (same pair set,
/// bucket-aware order): a `CHUNK_PAIRS` claim spans many buckets instead of
/// sitting inside one oversized bucket — at 25k modules the largest bucket
/// holds 391 descriptors (~152k consecutive bucket-major pairs, ~2.4k
/// consecutive chunks of near-identical work), and interleaving spreads
/// that bucket evenly across the sweep so chunk runtimes stay uniform.
fn blocked_plan(
    universe: &Universe,
    ids: &[ModuleId],
) -> (FingerprintIndex, Vec<(usize, usize)>, BlockingStats) {
    let index = FingerprintIndex::build(
        ids.iter()
            .map(|id| universe.catalog.get(id).map(|m| m.descriptor())),
        &universe.ontology,
    );
    let pairs = index.comparable_pairs_interleaved();
    let n = ids.len();
    let available = (0..n).filter(|&i| index.fingerprint(i).is_some()).count();
    let pairs_total = n * n.saturating_sub(1);
    let both_available = available * available.saturating_sub(1);
    let stats = BlockingStats {
        pairs_total,
        pairs_compared: pairs.len(),
        pairs_pruned: both_available - pairs.len(),
        pairs_unavailable: pairs_total - both_available,
        buckets: index.bucket_count(),
        largest_bucket: index.largest_bucket(),
    };
    if dex_telemetry::is_enabled() {
        dex_telemetry::gauge_set("dex.match.buckets", stats.buckets as i64);
        dex_telemetry::gauge_set("dex.match.bucket_max", stats.largest_bucket as i64);
    }
    (index, pairs, stats)
}

/// The batched chunk executor: runs `step` over every index of `pairs`,
/// serially when the worklist is at or below the crossover, otherwise on
/// `batch.threads` workers claiming `batch.chunk` indices per atomic fetch.
/// Returns one accumulator per worker (exactly one on the serial path).
fn run_batched<R, F, G>(pairs: &[(usize, usize)], batch: &BatchConfig, make: F, step: G) -> Vec<R>
where
    R: Send,
    F: Fn() -> R + Sync,
    G: Fn(&mut R, usize, (usize, usize)) + Sync,
{
    let threads = batch.threads.max(1);
    if threads == 1 || pairs.len() <= batch.serial_cutoff {
        dex_telemetry::gauge_set("dex.parallel.threads", 1);
        let mut acc = make();
        for (i, &pair) in pairs.iter().enumerate() {
            step(&mut acc, i, pair);
        }
        return vec![acc];
    }
    let chunk = batch.chunk.max(1);
    let workers = threads.min(pairs.len().div_ceil(chunk));
    dex_telemetry::gauge_set("dex.parallel.threads", workers as i64);
    let cursor = AtomicUsize::new(0);
    let ctx = dex_telemetry::current_context();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let make = &make;
                let step = &step;
                scope.spawn(move || {
                    let _worker = ctx.span("parallel.match_worker");
                    let mut acc = make();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= pairs.len() {
                            break;
                        }
                        let end = (start + chunk).min(pairs.len());
                        for (i, &pair) in pairs[start..end].iter().enumerate() {
                            step(&mut acc, start + i, pair);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("matching worker panicked"))
            .collect()
    })
}

fn unavailable_report(universe: &Universe, ids: &[ModuleId], t: usize, c: usize) -> MatchReport {
    // Target-side absence is reported first, matching the exhaustive sweep.
    let gone = if universe.catalog.get(&ids[t]).is_none() {
        &ids[t]
    } else {
        &ids[c]
    };
    MatchReport {
        target: ids[t].clone(),
        candidate: ids[c].clone(),
        outcome: MatchOutcome::Incomparable(format!("module `{gone}` is unavailable")),
        examples: 0,
    }
}

/// Per-id state resolved once per sweep for the prepared executor.
///
/// The old step closures paid two catalog `BTreeMap` lookups and two
/// memo-lock acquisitions (each cloning the target's `ModuleId` `String`
/// for the key) on *every* pair. On a multi-core run all workers serialize
/// on that one session mutex — the `blocked_parallel_ms == blocked_serial_ms`
/// collapse — and even serially the lock+hash+clone traffic is a large
/// constant share of the ~µs warm per-pair cost. Resolving the catalog
/// handle once per id and parking each target's memoized report in a
/// `OnceLock` cell makes the per-pair hot path lock-free after the cell's
/// first touch: workers read a shared `&CachedGeneration` and run only the
/// candidate replay.
struct PreparedIds<'u> {
    handles: Vec<Option<&'u SharedModule>>,
    reports: Vec<OnceLock<CachedGeneration>>,
}

impl<'u> PreparedIds<'u> {
    fn resolve(universe: &'u Universe, ids: &[ModuleId]) -> Self {
        let handles: Vec<Option<&'u SharedModule>> =
            ids.iter().map(|id| universe.catalog.get(id)).collect();
        let mut reports = Vec::with_capacity(ids.len());
        reports.resize_with(ids.len(), OnceLock::new);
        PreparedIds { handles, reports }
    }

    /// The catalog handle for a planned (therefore available) pair member.
    fn handle(&self, i: usize) -> &'u SharedModule {
        self.handles[i].expect("planned pair available")
    }

    /// The target's memoized report, generated on first touch (through the
    /// session memo, so it still lands in — or comes from — the shared
    /// cache) and lock-free afterwards.
    fn target_report(&self, session: &MatchSession, t: usize) -> &CachedGeneration {
        self.reports[t].get_or_init(|| session.report_for(self.handle(t).as_ref()))
    }
}

fn publish_session_telemetry(session: &MatchSession) {
    if dex_telemetry::is_enabled() {
        let stats = session.cache_stats();
        dex_telemetry::gauge_set("dex.match.cache_entries", stats.entries as i64);
        dex_telemetry::gauge_set(
            "dex.match.cache_bytes",
            stats.memoized_bytes_estimate as i64,
        );
        // Invocation-level cache effectiveness (hits/misses/entries) for the
        // whole all-pairs run — the matrix shares one memo across threads.
        session.invocation_cache().publish_telemetry();
    }
}

/// Blocked all-pairs matching over an existing [`MatchSession`] — the
/// warm-cache entry point: callers that already generated examples through
/// `session` reuse every memoized report.
///
/// Fingerprint-compatible pairs run the full memoized aligned-example
/// comparison through the batched executor; pairs pruned by fingerprints
/// are synthesized serially via [`MatchSession::pruned_report`] (provably
/// identical, invocation-free) so the returned matrix is byte-identical to
/// an exhaustive sweep.
pub fn match_pairs_blocked_in(
    session: &MatchSession,
    universe: &Universe,
    ids: &[ModuleId],
    batch: &BatchConfig,
) -> BlockedMatchMatrix {
    let _span = dex_telemetry::span("parallel.match_pairs");
    let (index, pairs, stats) = blocked_plan(universe, ids);
    let prepared = PreparedIds::resolve(universe, ids);
    let compared = run_batched(
        &pairs,
        batch,
        Vec::new,
        |acc: &mut Vec<(usize, MatchReport)>, i, (t, c)| {
            let report = prepared.target_report(session, t);
            acc.push((
                i,
                session.compare_report_prepared(
                    prepared.handle(t).as_ref(),
                    report,
                    prepared.handle(c).as_ref(),
                ),
            ));
        },
    );
    let mut reports = BTreeMap::new();
    for (i, report) in compared.into_iter().flatten() {
        let (t, c) = pairs[i];
        reports.insert((ids[t].clone(), ids[c].clone()), report);
    }
    // Pruned and unavailable pairs carry no invocation work, so they are
    // synthesized on the calling thread.
    for t in 0..ids.len() {
        for c in 0..ids.len() {
            if t == c || index.is_comparable(t, c) {
                continue;
            }
            let report = match (prepared.handles[t], prepared.handles[c]) {
                (Some(target), Some(candidate)) => {
                    let cell = prepared.target_report(session, t);
                    session.pruned_report_prepared(target.as_ref(), cell, candidate.as_ref())
                }
                _ => unavailable_report(universe, ids, t, c),
            };
            reports.insert((ids[t].clone(), ids[c].clone()), report);
        }
    }
    BlockedMatchMatrix { reports, stats }
}

/// [`match_pairs_blocked_in`] with a fresh cold-cache session.
pub fn match_pairs_blocked(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    batch: &BatchConfig,
) -> BlockedMatchMatrix {
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let matrix = match_pairs_blocked_in(&session, universe, ids, batch);
    publish_session_telemetry(&session);
    matrix
}

/// Blocked all-pairs matching that tallies verdicts instead of
/// materializing reports — constant memory in the pair count, which is what
/// makes the 25k-module sweep (625M ordered pairs) feasible at all. The
/// tallies equal what an exhaustive dense sweep would count: pruned and
/// unavailable pairs are incomparable by construction and are accounted
/// arithmetically.
pub fn match_pairs_blocked_summary(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    batch: &BatchConfig,
) -> BlockedMatchSummary {
    let _span = dex_telemetry::span("parallel.match_pairs_summary");
    let (_index, pairs, stats) = blocked_plan(universe, ids);
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let prepared = PreparedIds::resolve(universe, ids);
    let tallies = run_batched(
        &pairs,
        batch,
        <[usize; 4]>::default,
        |acc: &mut [usize; 4], _i, (t, c)| {
            let report = prepared.target_report(&session, t);
            let report = session.compare_report_prepared(
                prepared.handle(t).as_ref(),
                report,
                prepared.handle(c).as_ref(),
            );
            acc[verdict_slot(&report.outcome)] += 1;
        },
    );
    finish_summary(tallies, stats, &session)
}

/// The pre-PR summary path, kept callable as `bench_blocking`'s baseline
/// column (the same precedent as the retired per-pair channel executor's
/// `perpair_parallel_ms`): per-pair catalog lookups and a session memo-lock
/// acquisition on every pair, no pre-resolved handles, no report cells.
/// Byte-identical tallies to [`match_pairs_blocked_summary`]; only the
/// constant per-pair overhead — and its cross-thread serialization on the
/// memo lock — differs.
pub fn match_pairs_blocked_summary_unprepared(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    batch: &BatchConfig,
) -> BlockedMatchSummary {
    let _span = dex_telemetry::span("parallel.match_pairs_summary");
    let (_index, pairs, stats) = blocked_plan(universe, ids);
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let tallies = run_batched(
        &pairs,
        batch,
        <[usize; 4]>::default,
        |acc: &mut [usize; 4], _i, (t, c)| {
            let target = universe
                .catalog
                .get(&ids[t])
                .expect("planned pair available");
            let candidate = universe
                .catalog
                .get(&ids[c])
                .expect("planned pair available");
            let report = session.compare_report(target.as_ref(), candidate.as_ref());
            acc[verdict_slot(&report.outcome)] += 1;
        },
    );
    finish_summary(tallies, stats, &session)
}

fn verdict_slot(outcome: &MatchOutcome) -> usize {
    match outcome {
        MatchOutcome::Verdict(MatchVerdict::Equivalent { .. }) => 0,
        MatchOutcome::Verdict(MatchVerdict::Overlapping { .. }) => 1,
        MatchOutcome::Verdict(MatchVerdict::Disjoint { .. }) => 2,
        MatchOutcome::Incomparable(_) => 3,
    }
}

fn finish_summary(
    tallies: Vec<[usize; 4]>,
    stats: BlockingStats,
    session: &MatchSession,
) -> BlockedMatchSummary {
    let mut summary = BlockedMatchSummary {
        stats,
        ..BlockedMatchSummary::default()
    };
    for [eq, ov, dj, inc] in tallies {
        summary.equivalent += eq;
        summary.overlapping += ov;
        summary.disjoint += dj;
        summary.incomparable += inc;
    }
    summary.incomparable += stats.pairs_pruned + stats.pairs_unavailable;
    if dex_telemetry::is_enabled() {
        // Mirror what the dense path's pruned_report calls would have
        // counted, without synthesizing the reports.
        let skipped = (stats.pairs_pruned + stats.pairs_unavailable) as u64;
        dex_telemetry::counter_add("dex.match.pairs", skipped);
        dex_telemetry::counter_add("dex.match.verdict.incomparable", skipped);
        dex_telemetry::counter_add("dex.match.pairs_pruned", stats.pairs_pruned as u64);
    }
    publish_session_telemetry(session);
    summary
}

/// The exhaustive all-pairs oracle: every ordered pair runs the full
/// comparison serially through one shared session, no blocking, no
/// batching. This is the semantics the blocked paths must reproduce
/// byte-for-byte; the equivalence proptests in `tests/properties.rs` hold
/// them to it.
pub fn match_pairs_exhaustive(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    match_pairs_exhaustive_in(&session, universe, ids)
}

/// [`match_pairs_exhaustive`] over an existing (possibly warm) session.
pub fn match_pairs_exhaustive_in(
    session: &MatchSession,
    universe: &Universe,
    ids: &[ModuleId],
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    let mut reports = BTreeMap::new();
    for t in 0..ids.len() {
        for c in 0..ids.len() {
            if t == c {
                continue;
            }
            let report = match (universe.catalog.get(&ids[t]), universe.catalog.get(&ids[c])) {
                (Some(target), Some(candidate)) => {
                    session.compare_report(target.as_ref(), candidate.as_ref())
                }
                _ => unavailable_report(universe, ids, t, c),
            };
            reports.insert((ids[t].clone(), ids[c].clone()), report);
        }
    }
    reports
}

/// Matches every ordered pair of distinct modules in `ids` against each
/// other — blocked and batched: fingerprint blocking prunes provably
/// incomparable pairs without invocation, and the surviving pairs run on
/// the batched chunk executor over `threads` workers (serially below the
/// measured crossover, where fan-out used to *lose* to the serial sweep).
///
/// Target-side example generation goes through one shared [`MatchSession`],
/// so each module is generated once for the whole run instead of once per
/// pair. The returned matrix is byte-identical to the exhaustive oracle's.
pub fn match_pairs_parallel(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    match_pairs_blocked(
        universe,
        ids,
        pool,
        config,
        &BatchConfig::with_threads(threads),
    )
    .reports
}

/// [`match_pairs_parallel`] over every available module of the universe: the
/// registry-wide all-pairs matching matrix.
pub fn match_all_parallel(
    universe: &Universe,
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    match_pairs_parallel(universe, &universe.available_ids(), pool, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{compare_modules, generate_examples, MatchOutcome};
    use dex_pool::build_synthetic_pool;

    #[test]
    fn parallel_equals_serial() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();

        let parallel = generate_all_parallel(&universe, &pool, &config, 8);
        assert_eq!(parallel.len(), 252);
        // Spot-check against serial generation for a sample of modules.
        for id in universe.available_ids().into_iter().step_by(17) {
            let module = universe.catalog.get(&id).unwrap();
            let serial =
                generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
            assert_eq!(parallel[&id].examples, serial.examples, "{id}");
        }
    }

    #[test]
    fn single_thread_also_works() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 1);
        let config = GenerationConfig::default();
        let reports = generate_all_parallel(&universe, &pool, &config, 1);
        assert_eq!(reports.len(), 252);
    }

    #[test]
    fn fleet_degrades_around_a_withdrawn_module_instead_of_dying() {
        let mut universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 2, 5);
        let config = GenerationConfig::default();
        let victim = universe.available_ids()[0].clone();

        let baseline = generate_all_parallel(&universe, &pool, &config, 4);
        universe.catalog.withdraw(&victim);
        let retrier = Retrier::new(dex_modules::RetryPolicy::transient(2));
        let fleet = generate_fleet(&universe, &pool, &config, 4, &retrier, false);
        assert_eq!(fleet.reports.len(), baseline.len() - 1);
        assert!(!fleet.reports.contains_key(&victim));
        assert!(
            fleet.failures.is_empty(),
            "withdrawn ids drop out of available_ids(), so nothing failed"
        );
        for (id, report) in &fleet.reports {
            assert_eq!(report.examples, baseline[id].examples, "{id}");
        }

        // The matching sweep likewise records the withdrawn module as
        // incomparable instead of panicking.
        let ids = vec![victim.clone(), fleet.reports.keys().next().unwrap().clone()];
        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, 2);
        assert_eq!(matrix.len(), 2);
        for report in matrix.values() {
            match &report.outcome {
                MatchOutcome::Incomparable(msg) => {
                    assert!(msg.contains("unavailable"), "{msg}")
                }
                other => panic!("expected incomparable, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_pairs_matches_serial_comparisons() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();
        // A modest slice keeps the quadratic test quick; every 11th module
        // still crosses all five categories.
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(11).collect();

        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(matrix.len(), ids.len() * (ids.len() - 1));

        for ((t, c), report) in &matrix {
            assert_eq!(&report.target, t);
            assert_eq!(&report.candidate, c);
            let target = universe.catalog.get(t).unwrap();
            let candidate = universe.catalog.get(c).unwrap();
            let serial = compare_modules(
                target.as_ref(),
                candidate.as_ref(),
                &universe.ontology,
                &pool,
                &config,
            );
            match (&report.outcome, serial) {
                (MatchOutcome::Verdict(v), Ok(w)) => assert_eq!(*v, w, "{t} vs {c}"),
                (MatchOutcome::Incomparable(msg), Err(e)) => {
                    assert_eq!(msg, &e.to_string(), "{t} vs {c}")
                }
                (got, want) => panic!("{t} vs {c}: {got:?} but serial said {want:?}"),
            }
        }
    }

    /// The crossover regression (ISSUE 6 satellite): the batched executor
    /// must produce matrices identical to the serial path at catalog sizes
    /// straddling the serial cutoff — forced onto each side of the
    /// threshold explicitly, so the test exercises both code paths no
    /// matter where the measured constant lands.
    #[test]
    fn batched_executor_identical_to_serial_across_the_cutoff() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 19);
        let config = GenerationConfig::default();
        // Two catalog sizes: one whose compared-pair count sits below any
        // plausible cutoff, one above the claim chunk size.
        for step in [31usize, 7] {
            let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(step).collect();
            let forced_serial = BatchConfig {
                threads: 8,
                serial_cutoff: usize::MAX,
                chunk: BatchConfig::CHUNK_PAIRS,
            };
            let forced_batched = BatchConfig {
                threads: 8,
                serial_cutoff: 0,
                chunk: 3, // tiny chunk: maximum claim churn
            };
            let serial = match_pairs_blocked(&universe, &ids, &pool, &config, &forced_serial);
            let batched = match_pairs_blocked(&universe, &ids, &pool, &config, &forced_batched);
            assert_eq!(serial.reports, batched.reports, "step {step}");
            assert_eq!(serial.stats, batched.stats, "step {step}");
        }
    }

    #[test]
    fn blocked_matrix_is_byte_identical_to_exhaustive_oracle() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 42);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(13).collect();
        let oracle = match_pairs_exhaustive(&universe, &ids, &pool, &config);
        let blocked = match_pairs_blocked(
            &universe,
            &ids,
            &pool,
            &config,
            &BatchConfig::with_threads(4),
        );
        assert_eq!(oracle, blocked.reports);
        let s = blocked.stats;
        assert_eq!(s.pairs_total, ids.len() * (ids.len() - 1));
        assert_eq!(
            s.pairs_compared + s.pairs_pruned + s.pairs_unavailable,
            s.pairs_total
        );
        assert!(s.pairs_pruned > 0, "a mixed catalog must prune something");
        assert!(s.buckets > 1);
    }

    #[test]
    fn summary_tallies_agree_with_the_dense_matrix() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 11);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(17).collect();
        let dense = match_pairs_blocked(
            &universe,
            &ids,
            &pool,
            &config,
            &BatchConfig::with_threads(4),
        );
        let summary = match_pairs_blocked_summary(
            &universe,
            &ids,
            &pool,
            &config,
            &BatchConfig::with_threads(4),
        );
        let mut want = (0usize, 0usize, 0usize, 0usize);
        for report in dense.reports.values() {
            match &report.outcome {
                MatchOutcome::Verdict(dex_core::MatchVerdict::Equivalent { .. }) => want.0 += 1,
                MatchOutcome::Verdict(dex_core::MatchVerdict::Overlapping { .. }) => want.1 += 1,
                MatchOutcome::Verdict(dex_core::MatchVerdict::Disjoint { .. }) => want.2 += 1,
                MatchOutcome::Incomparable(_) => want.3 += 1,
            }
        }
        assert_eq!(summary.tallies(), want);
        assert_eq!(summary.stats, dense.stats);
    }

    #[test]
    fn unprepared_baseline_agrees_with_the_prepared_summary() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 13);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(19).collect();
        for batch in [BatchConfig::with_threads(1), BatchConfig::with_threads(4)] {
            let prepared = match_pairs_blocked_summary(&universe, &ids, &pool, &config, &batch);
            let baseline =
                match_pairs_blocked_summary_unprepared(&universe, &ids, &pool, &config, &batch);
            assert_eq!(prepared.tallies(), baseline.tallies());
            assert_eq!(prepared.stats, baseline.stats);
        }
    }

    #[test]
    fn all_pairs_is_deterministic_across_thread_counts() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 3, 7);
        let config = GenerationConfig::default();
        let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(23).collect();
        let one = match_pairs_parallel(&universe, &ids, &pool, &config, 1);
        let many = match_pairs_parallel(&universe, &ids, &pool, &config, 8);
        assert_eq!(one, many);
    }
}
