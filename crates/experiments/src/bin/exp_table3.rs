//! Regenerates Table 3 (module category counts).
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table3(&ctx));
    telemetry.finish("exp_table3");
}
