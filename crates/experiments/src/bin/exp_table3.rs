//! Regenerates Table 3 (module category counts).
fn main() {
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table3(&ctx));
}
