//! Regenerates Figure 8 (matching unavailable modules).
use dex_repair::RepositoryPlan;
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let results = dex_experiments::experiments::decay_experiments(&RepositoryPlan::default());
    print!("{}", results.figure8);
    telemetry.finish("exp_figure8");
}
