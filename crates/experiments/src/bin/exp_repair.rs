//! Regenerates the §6 repair numbers.
use dex_repair::RepositoryPlan;
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let results = dex_experiments::experiments::decay_experiments(&RepositoryPlan::default());
    print!("{}", results.repair);
    telemetry.finish("exp_repair");
}
