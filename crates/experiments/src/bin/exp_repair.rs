//! Regenerates the §6 repair numbers — and, with `--scale`, drives the
//! continuous decay-and-repair workload over a scaled universe.
//!
//! ```text
//! exp_repair                                  # paper profile (§6 table)
//! exp_repair --scale 10000 --waves 3          # continuous workload
//!            [--workflows N] [--fault-rate PCT] [--seed S]
//! ```
//!
//! In `--scale` mode each wave withdraws `--fault-rate`% of the available
//! modules through the incremental delta pipeline (no cold re-runs), repairs
//! every currently broken workflow — the wave's own victims plus the
//! carried-forward broken set from earlier waves — and prints throughput
//! (repairs/s), re-repair counts, and p50/p95/p99 per-workflow latency.

use dex_experiments::{run_continuous, ContinuousConfig};
use dex_repair::RepositoryPlan;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return v.parse().ok();
        }
        if a == flag {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
    }
    None
}

fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();

    match arg_value(&args, "--scale") {
        None => {
            let results =
                dex_experiments::experiments::decay_experiments(&RepositoryPlan::default());
            print!("{}", results.repair);
        }
        Some(scale) => {
            let waves = arg_value(&args, "--waves").unwrap_or(3) as usize;
            let seed = arg_value(&args, "--seed").unwrap_or(42);
            let mut cfg = ContinuousConfig::at_scale(scale as usize, waves, seed);
            if let Some(w) = arg_value(&args, "--workflows") {
                cfg.workflows = w as usize;
            }
            if let Some(r) = arg_value(&args, "--fault-rate") {
                cfg.fault_pct = r as u32;
            }
            let report = run_continuous(&cfg);

            let p = &report.prepare;
            println!(
                "continuous decay-and-repair: {} modules, {} families, {} concepts, {} workflows",
                p.modules, p.families, p.concepts, p.workflows
            );
            println!(
                "  build {:.0} ms | bootstrap {:.0} ms | streaming harvest {:.0} ms ({} instances)",
                p.build_ms, p.bootstrap_ms, p.harvest_ms, p.harvested_instances
            );
            println!(
                "{:<5} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10} {:>9} {:>9} {:>9}",
                "wave",
                "withdrawn",
                "affected",
                "carried",
                "rerepair",
                "full",
                "partial",
                "none",
                "subst",
                "repairs/s",
                "p50 ms",
                "p95 ms",
                "p99 ms"
            );
            for w in &report.waves {
                println!(
                    "{:<5} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10.1} {:>9.3} {:>9.3} {:>9.3}",
                    w.wave,
                    w.withdrawals,
                    w.affected_workflows,
                    w.carried_broken,
                    w.re_repaired,
                    w.fully_repaired,
                    w.partially_repaired,
                    w.unrepaired,
                    w.substitutions,
                    w.repairs_per_sec,
                    w.latency.p50_ns as f64 / 1e6,
                    w.latency.p95_ns as f64 / 1e6,
                    w.latency.p99_ns as f64 / 1e6,
                );
            }
            println!(
                "total: {} substitutions, {} re-repaired across {} waves | overall p50 {:.3} ms p95 {:.3} ms p99 {:.3} ms",
                report.total_substitutions(),
                report.total_re_repaired(),
                report.waves.len(),
                report.latency_overall.p50_ns as f64 / 1e6,
                report.latency_overall.p95_ns as f64 / 1e6,
                report.latency_overall.p99_ns as f64 / 1e6,
            );
        }
    }
    telemetry.finish("exp_repair");
}
