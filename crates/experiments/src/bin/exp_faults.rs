//! Fault-injection smoke: proves the fault-tolerant pipeline *converges*.
//!
//! Runs a representative slice of the evaluation twice — once fault-free,
//! once with seeded transient faults injected in front of every module —
//! and requires the rendered reports to be **byte-identical**: retries must
//! fully absorb the injected faults, and the invocation cache must never
//! memoize a transient outcome. Exits nonzero on any divergence, so CI can
//! gate on it.
//!
//! Also prints the example-yield sweep under 0/5/20% fault rates with
//! retries on and off (the EXPERIMENTS.md degradation table).
//!
//! Flags: `--fault-rate=PCT` (default 10), `--fault-seed=SEED`,
//! `--telemetry[=PATH]`.

use dex_experiments::faults::DEFAULT_FAULT_SEED;
use dex_experiments::{experiments, Context, FaultConfig, TelemetryRun};
use dex_modules::RetryPolicy;
use dex_repair::RepositoryPlan;

/// One run of the comparison slice: Table 1 (generation behavior), the
/// matching summary (replay + session cache), and the small-scale decay
/// pipeline (corpus, Figure 8, repair).
fn digest(faults: &FaultConfig) -> (String, Context) {
    let ctx = Context::build_with(faults);
    let mut out = String::new();
    out.push_str(&experiments::table1(&ctx));
    out.push_str(&experiments::matching_summary(&ctx));
    let decay = experiments::decay_experiments_with(&RepositoryPlan::small(2), faults);
    out.push_str(&decay.figure8);
    out.push_str(&decay.repair);
    (out, ctx)
}

/// Total examples generated across all modules under `faults` — the yield
/// the degradation table tracks.
fn yield_under(faults: &FaultConfig) -> (usize, usize) {
    let ctx = Context::build_with(faults);
    let examples = ctx.reports.values().map(|r| r.examples.len()).sum();
    let transients = ctx
        .reports
        .values()
        .map(|r| r.transient_failures)
        .sum::<usize>()
        + ctx.generation_failures.len();
    (examples, transients)
}

fn main() {
    let telemetry = TelemetryRun::from_env();
    let mut faulted = FaultConfig::from_env();
    if !faulted.is_injecting() {
        faulted = FaultConfig::injected(10, DEFAULT_FAULT_SEED);
    }
    let plan = faulted.injector.as_ref().expect("injector armed").plan();
    println!(
        "fault smoke: rate {}‰, seed {:#x}, retry {} attempts\n",
        plan.fault_rate_millis, plan.seed, faulted.retry.max_attempts
    );
    let plan_rate = plan.fault_rate_millis;
    let plan_seed = plan.seed;

    let (baseline, _) = digest(&FaultConfig::none());
    let (shaken, ctx) = digest(&faulted);

    let fault_stats = faulted.stats();
    let mut failed = false;
    if baseline != shaken {
        eprintln!("FAIL: faulted reports diverge from the fault-free baseline");
        for (i, (b, s)) in baseline.lines().zip(shaken.lines()).enumerate() {
            if b != s {
                eprintln!("  first divergent line {i}:\n  - {b}\n  + {s}");
                break;
            }
        }
        failed = true;
    } else {
        println!("reports: byte-identical to the fault-free baseline");
    }
    if fault_stats.injected_total() == 0 {
        eprintln!("FAIL: no faults were injected — the smoke tested nothing");
        failed = true;
    } else {
        println!(
            "faults:  {} transient + {} unavailable injected over {} invocations",
            fault_stats.injected_faults, fault_stats.injected_unavailable, fault_stats.invocations
        );
    }
    if ctx.retry.retries == 0 {
        eprintln!("FAIL: faults were injected but generation never retried");
        failed = true;
    } else {
        println!(
            "retries: {} (of {} attempts), {} backoff ticks",
            ctx.retry.retries, ctx.retry.attempts, ctx.retry.backoff_ticks
        );
    }
    if ctx.retry.budget_denied > 0 {
        eprintln!(
            "FAIL: retry budget exhausted ({} denials) — raise the budget or lower the rate",
            ctx.retry.budget_denied
        );
        failed = true;
    }
    if !ctx.generation_failures.is_empty() {
        eprintln!(
            "FAIL: {} modules failed generation even with retries",
            ctx.generation_failures.len()
        );
        failed = true;
    }

    println!("\nexample yield under injected fault rates (seed {plan_seed:#x}):");
    println!("| fault rate | retries | examples | transient failures |");
    println!("|---|---|---|---|");
    for rate in [0u32, 5, 20] {
        for retries_on in [true, false] {
            let mut cfg = FaultConfig::injected(rate, plan_seed);
            if !retries_on {
                cfg.retry = RetryPolicy::none();
            }
            let (examples, transients) = yield_under(&cfg);
            println!(
                "| {rate}% | {} | {examples} | {transients} |",
                if retries_on { "on" } else { "off" }
            );
        }
    }

    telemetry.finish("exp_faults");
    if failed {
        eprintln!("\nfault smoke FAILED (rate {plan_rate}‰, seed {plan_seed:#x})");
        std::process::exit(1);
    }
    println!("\nfault smoke passed");
}
