//! CI validator for telemetry artifacts.
//!
//! ```text
//! trace_check <trace.json> [FLIGHT.json]
//! ```
//!
//! Parses a Chrome trace export, checks its causal invariants (every parent
//! id resolves, ids are unique, timestamps are monotonic per track), and —
//! when a flight-recorder dump is given — verifies the post-mortem is
//! non-empty and `seq`-ordered. Exits nonzero with a defect listing on any
//! violation, so the CI smoke run fails loudly instead of uploading a trace
//! Perfetto cannot stitch.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(trace_path) = args.first() else {
        eprintln!("usage: trace_check <trace.json> [FLIGHT.json]");
        return ExitCode::FAILURE;
    };

    let json = match std::fs::read_to_string(trace_path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("trace_check: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match dex_telemetry::chrome_trace_from_json(&json) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace_check: {trace_path} is not a Chrome trace array: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("trace_check: {trace_path} contains no trace events");
        return ExitCode::FAILURE;
    }
    let defects = dex_telemetry::validate_chrome_trace(&events);
    if !defects.is_empty() {
        eprintln!("trace_check: {trace_path} has {} defect(s):", defects.len());
        for defect in &defects {
            eprintln!("  - {defect}");
        }
        return ExitCode::FAILURE;
    }
    let tracks = {
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    };
    let roots = events.iter().filter(|e| e.args.parent == 0).count();
    println!(
        "trace_check: {trace_path} ok ({} events, {tracks} tracks, {roots} roots)",
        events.len()
    );

    if let Some(flight_path) = args.get(1) {
        let json = match std::fs::read_to_string(flight_path) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("trace_check: cannot read {flight_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let dump = match dex_telemetry::FlightDump::from_json(&json) {
            Ok(dump) => dump,
            Err(e) => {
                eprintln!("trace_check: {flight_path} is not a flight dump: {e}");
                return ExitCode::FAILURE;
            }
        };
        if dump.events.is_empty() {
            eprintln!(
                "trace_check: {flight_path} post-mortem is empty (reason: {})",
                dump.reason
            );
            return ExitCode::FAILURE;
        }
        if dump.events.windows(2).any(|w| w[0].seq >= w[1].seq) {
            eprintln!("trace_check: {flight_path} events are not in seq order");
            return ExitCode::FAILURE;
        }
        println!(
            "trace_check: {flight_path} ok (reason \"{}\", {} events of {} recorded)",
            dump.reason,
            dump.events.len(),
            dump.total_recorded
        );
    }
    ExitCode::SUCCESS
}
