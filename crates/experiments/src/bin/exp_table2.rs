//! Regenerates Table 2 (conciseness distribution).
fn main() {
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table2(&ctx));
}
