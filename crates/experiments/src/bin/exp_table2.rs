//! Regenerates Table 2 (conciseness distribution).
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table2(&ctx));
    telemetry.finish("exp_table2");
}
