//! Regenerates the §4.3 coverage result.
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::coverage(&ctx));
    telemetry.finish("exp_coverage");
}
