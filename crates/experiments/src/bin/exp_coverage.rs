//! Regenerates the §4.3 coverage result.
fn main() {
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::coverage(&ctx));
}
