//! Regenerates Table 1 (completeness distribution).
fn main() {
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table1(&ctx));
}
