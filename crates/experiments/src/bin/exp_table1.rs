//! Regenerates Table 1 (completeness distribution).
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::table1(&ctx));
    telemetry.finish("exp_table1");
}
