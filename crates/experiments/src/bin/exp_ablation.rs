//! Runs the DESIGN.md §5 ablations: partitioning vs random selection,
//! pool-size sweep, annotation specificity, and matching-method comparison.
use dex_experiments::ablations;
use dex_repair::RepositoryPlan;
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", ablations::partitioning_vs_random(&ctx));
    print!("{}", ablations::pool_size_sweep(&ctx));
    print!("{}", ablations::annotation_specificity(&ctx));
    print!("{}", ablations::matching_method(&RepositoryPlan::small(8)));
    telemetry.finish("exp_ablation");
}
