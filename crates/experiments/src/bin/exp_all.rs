//! Regenerates every table and figure of the paper's evaluation in order.
use dex_experiments::{experiments, FaultConfig};
use dex_repair::RepositoryPlan;
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let faults = FaultConfig::from_env();
    let ctx = dex_experiments::Context::build_with(&faults);
    print!("{}", experiments::table1(&ctx));
    print!("{}", experiments::table2(&ctx));
    print!("{}", experiments::table3(&ctx));
    print!("{}", experiments::coverage(&ctx));
    print!("{}", experiments::figure5(&ctx));
    print!("{}", experiments::matching_summary(&ctx));
    // The decay slice runs under the same fault plan, so a seeded-fault run
    // leaves its injected faults in the flight window the withdrawal dump
    // captures.
    let decay = experiments::decay_experiments_with(&RepositoryPlan::default(), &faults);
    print!("{}", decay.figure8);
    print!("{}", decay.repair);
    telemetry.finish("exp_all");
}
