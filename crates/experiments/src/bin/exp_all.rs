//! Regenerates every table and figure of the paper's evaluation in order.
use dex_experiments::experiments;
use dex_repair::RepositoryPlan;
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", experiments::table1(&ctx));
    print!("{}", experiments::table2(&ctx));
    print!("{}", experiments::table3(&ctx));
    print!("{}", experiments::coverage(&ctx));
    print!("{}", experiments::figure5(&ctx));
    print!("{}", experiments::matching_summary(&ctx));
    let decay = experiments::decay_experiments(&RepositoryPlan::default());
    print!("{}", decay.figure8);
    print!("{}", decay.repair);
    telemetry.finish("exp_all");
}
