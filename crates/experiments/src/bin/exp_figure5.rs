//! Regenerates Figure 5 (the user study).
fn main() {
    let telemetry = dex_experiments::TelemetryRun::from_env();
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::figure5(&ctx));
    telemetry.finish("exp_figure5");
}
