//! Regenerates Figure 5 (the user study).
fn main() {
    let ctx = dex_experiments::Context::build();
    print!("{}", dex_experiments::experiments::figure5(&ctx));
}
