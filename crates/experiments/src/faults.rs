//! Opt-in deterministic fault injection for the experiment binaries.
//!
//! A [`FaultConfig`] bundles the three fault-tolerance knobs a run needs:
//! an optional [`FaultInjector`] that wraps every catalog module in a
//! seeded [`dex_modules::FaultyModule`], the [`RetryPolicy`] the pipeline
//! uses to ride the injected transients out, and whether residual failures
//! should abort the run (`fail_fast`) or degrade it gracefully.
//!
//! Like telemetry, faults are parsed from the process arguments and
//! environment: `--fault-rate=PCT` (and optional `--fault-seed=SEED`,
//! `--fail-fast`) or the `DEX_FAULT_RATE` / `DEX_FAULT_SEED` /
//! `DEX_FAIL_FAST` variables. Without a rate, [`FaultConfig::from_env`]
//! returns the inert [`FaultConfig::none`] and the binaries behave exactly
//! as before.

use dex_modules::{FaultInjector, FaultPlan, FaultStats, ModuleCatalog, RetryPolicy};

/// Default seed for injected faults when only a rate is given.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_0175;

/// Fault-injection and retry configuration for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// When set, every catalog module gets wrapped in a seeded fault
    /// injector before any invocation happens.
    pub injector: Option<FaultInjector>,
    /// Retry policy threaded through generation, matching, and enactment.
    pub retry: RetryPolicy,
    /// Abort on the first residual (post-retry) failure instead of
    /// degrading gracefully.
    pub fail_fast: bool,
}

impl FaultConfig {
    /// No injection, no retries, graceful degradation: the historical
    /// behavior of every binary.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Injects transient faults on roughly `rate_pct`% of invocations
    /// (seeded, deterministic) and arms a retry policy strong enough to
    /// ride out the bounded fault bursts the plan produces.
    pub fn injected(rate_pct: u32, seed: u64) -> FaultConfig {
        FaultConfig {
            injector: Some(FaultInjector::new(FaultPlan::rate_pct(seed, rate_pct))),
            retry: RetryPolicy {
                retry_budget: Some(10_000_000),
                ..RetryPolicy::transient(4)
            },
            fail_fast: false,
        }
    }

    /// Parses `--fault-rate=PCT`, `--fault-seed=SEED`, `--fail-fast` from
    /// the process arguments, falling back to the `DEX_FAULT_RATE`,
    /// `DEX_FAULT_SEED`, and `DEX_FAIL_FAST` environment variables.
    pub fn from_env() -> FaultConfig {
        let mut rate: Option<u32> = None;
        let mut seed: Option<u64> = None;
        let mut fail_fast = false;
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--fault-rate=") {
                rate = v.parse().ok();
            } else if let Some(v) = arg.strip_prefix("--fault-seed=") {
                seed = v.parse().ok();
            } else if arg == "--fail-fast" {
                fail_fast = true;
            }
        }
        if rate.is_none() {
            rate = std::env::var("DEX_FAULT_RATE")
                .ok()
                .and_then(|v| v.parse().ok());
        }
        if seed.is_none() {
            seed = std::env::var("DEX_FAULT_SEED")
                .ok()
                .and_then(|v| v.parse().ok());
        }
        if !fail_fast {
            fail_fast = std::env::var("DEX_FAIL_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
        }
        let mut config = match rate {
            Some(rate) if rate > 0 => {
                FaultConfig::injected(rate, seed.unwrap_or(DEFAULT_FAULT_SEED))
            }
            _ => FaultConfig::none(),
        };
        config.fail_fast = fail_fast;
        config
    }

    /// Whether any faults will actually be injected.
    pub fn is_injecting(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|i| i.plan().fault_rate_millis > 0 || !i.plan().flaps.is_empty())
    }

    /// Wraps every module of `catalog` (withdrawn ones included) in the
    /// configured injector. No-op without one.
    pub fn apply(&self, catalog: &mut ModuleCatalog) {
        if let Some(injector) = &self.injector {
            catalog.wrap_modules(|_, module| injector.wrap(module));
        }
    }

    /// Aggregated injection counters across every wrapped module.
    pub fn stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let f = FaultConfig::none();
        assert!(!f.is_injecting());
        assert!(!f.retry.retries_enabled());
        assert_eq!(f.stats().injected_total(), 0);
    }

    #[test]
    fn injected_arms_retries_strong_enough_for_the_plan() {
        let f = FaultConfig::injected(10, 7);
        assert!(f.is_injecting());
        let plan = f.injector.as_ref().unwrap().plan().clone();
        // Convergence argument: the longest fault burst must be shorter than
        // the retry budget per invocation, or a faulted run could diverge
        // from the fault-free baseline.
        assert!(plan.max_consecutive < f.retry.max_attempts);
    }
}
