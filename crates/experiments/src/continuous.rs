//! Continuous decay-and-repair over scaled universes — §6's workflow-decay
//! study run as a *workload* instead of a one-shot experiment.
//!
//! [`ContinuousState::prepare`] stands up a scaled world
//! ([`dex_universe::scale::build_scaled`]), bootstraps the incremental
//! pipeline over it, and streams the repository's pre-decay provenance
//! through a [`HarvestSink`] (sharing the pipeline's warm invocation
//! cache). Each subsequent wave ([`ContinuousState::decay_wave`], or
//! [`ContinuousState::apply_wave`] for a caller-chosen delta schedule):
//!
//! 1. routes its withdrawals/restores through [`Delta`] events so the
//!    incremental engine absorbs them — **zero** cold regenerations per
//!    withdraw-only wave, asserted against the delta accounting;
//! 2. the engine's carried-forward matching study (fingerprint-prefiltered
//!    ranked verdicts captured at withdrawal time) proposes substitutes;
//! 3. every *currently broken* workflow — hit by this wave **or carried
//!    over from an earlier one** — is repaired by trace-replay-verified
//!    substitution and healed in place. Carrying the broken set forward is
//!    what lets a workflow left unrepaired in wave N succeed in wave N+1
//!    once a viable substitute (re)appears; such recoveries are reported as
//!    [`WaveReport::re_repaired`].
//!
//! Per-workflow repair latency is recorded into the
//! `dex.repair.workflow_ns` histogram with per-wave p50/p95/p99 +
//! repairs/s derived from the same log-bucketed [`HistogramSnapshot`]
//! scheme the rest of the telemetry uses.
//!
//! `exp_repair --scale N --waves W` and `bench_repair` are thin front-ends
//! over [`run_continuous`], which drives seeded decay waves over one
//! prepared state.

use crate::incremental::IncrementalPipeline;
use dex_core::delta::{Delta, DeltaReport};
use dex_core::GenerationConfig;
use dex_modules::{ModuleId, RetryPolicy};
use dex_pool::build_text_pool;
use dex_provenance::{HarvestSink, ProvenanceCorpus};
use dex_repair::{generate_repository, repair_repository_with, RepositoryPlan, WorkflowRepository};
use dex_telemetry::{HistogramSnapshot, BUCKET_BOUNDS_NS};
use dex_universe::scale::{build_scaled, FamilyInfo, ScalePlan};
use dex_values::classify::classify_concept;
use dex_workflow::{enact_cached, EnactmentTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Knobs of one continuous decay-and-repair run.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Modules in the scaled universe.
    pub scale: usize,
    /// Stored workflows in the repository.
    pub workflows: usize,
    /// Decay waves to drive.
    pub waves: usize,
    /// Percent of the still-available modules withdrawn per wave.
    pub fault_pct: u32,
    /// Master seed (world, repository, and decay schedule all derive from
    /// it).
    pub seed: u64,
    /// Per-concept instances in the backing text pool.
    pub pool_depth: usize,
    /// Retry policy for repair verification replays.
    pub retry: RetryPolicy,
}

impl ContinuousConfig {
    /// A run at `scale` modules with the default workload shape: one stored
    /// workflow per ~5 modules (at least 50), 10% decay per wave.
    pub fn at_scale(scale: usize, waves: usize, seed: u64) -> ContinuousConfig {
        ContinuousConfig {
            scale,
            workflows: (scale / 5).max(50),
            waves,
            fault_pct: 10,
            seed,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        }
    }
}

/// Setup-phase accounting: what was built and what it cost.
#[derive(Debug, Clone)]
pub struct PrepareStats {
    /// Modules in the world (equals the config's `scale`).
    pub modules: usize,
    /// Behavior families generated.
    pub families: usize,
    /// Concepts in the scaled ontology.
    pub concepts: usize,
    /// Stored workflows.
    pub workflows: usize,
    /// Wall time to build world + pool + repository, milliseconds.
    pub build_ms: f64,
    /// Wall time of the incremental pipeline bootstrap, milliseconds.
    pub bootstrap_ms: f64,
    /// Wall time of the streaming provenance harvest, milliseconds.
    pub harvest_ms: f64,
    /// Distinct instances the streaming harvest produced.
    pub harvested_instances: usize,
}

/// Accounting for one decay wave.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index, 0-based.
    pub wave: usize,
    /// Modules withdrawn this wave.
    pub withdrawals: usize,
    /// The incremental engine's delta accounting for the wave's batch.
    pub delta: DeltaReport,
    /// Repair attempts this wave: workflows broken by this wave's
    /// withdrawals plus still-broken carryover from earlier waves.
    pub affected_workflows: usize,
    /// Still-broken workflows carried into this wave from earlier ones.
    pub carried_broken: usize,
    /// Carried-over broken workflows that ended this wave fully healed —
    /// the re-repairs the pre-fix driver could never attempt.
    pub re_repaired: usize,
    /// Repair outcomes across the attempts.
    pub fully_repaired: usize,
    /// Workflows where only part of the broken steps could be fixed.
    pub partially_repaired: usize,
    /// Workflows where no broken step could be fixed.
    pub unrepaired: usize,
    /// Accepted (replay-verified) substitutions across all attempts.
    pub substitutions: usize,
    /// Workflows still referencing an unavailable module after repair.
    pub broken_after: usize,
    /// Wall time of the wave's repair phase, milliseconds.
    pub repair_ms: f64,
    /// Accepted substitutions per second of repair-phase wall time.
    pub repairs_per_sec: f64,
    /// Per-workflow repair latency distribution for this wave.
    pub latency: HistogramSnapshot,
}

/// Everything a continuous run produced.
#[derive(Debug, Clone)]
pub struct ContinuousReport {
    /// Setup-phase accounting.
    pub prepare: PrepareStats,
    /// Per-wave accounting, in order.
    pub waves: Vec<WaveReport>,
    /// Per-workflow repair latency across all waves.
    pub latency_overall: HistogramSnapshot,
}

impl ContinuousReport {
    /// Accepted substitutions across all waves.
    pub fn total_substitutions(&self) -> usize {
        self.waves.iter().map(|w| w.substitutions).sum()
    }

    /// Carried-over broken workflows healed across all waves.
    pub fn total_re_repaired(&self) -> usize {
        self.waves.iter().map(|w| w.re_repaired).sum()
    }

    /// Minimum per-wave repair throughput, substitutions per second.
    pub fn min_repairs_per_sec(&self) -> f64 {
        self.waves
            .iter()
            .map(|w| w.repairs_per_sec)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Local latency accumulator using the telemetry bucket scheme, so per-wave
/// percentiles come from the same [`HistogramSnapshot::percentile`] estimator
/// as every other latency in the system — without needing the global
/// subscriber enabled.
#[derive(Default)]
pub(crate) struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl LatencyHistogram {
    pub(crate) fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
        }
    }

    pub(crate) fn record(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count,
            sum_ns: self.sum_ns,
            buckets: self.buckets.clone(),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        snap.p50_ns = snap.percentile(0.50).round() as u64;
        snap.p95_ns = snap.percentile(0.95).round() as u64;
        snap.p99_ns = snap.percentile(0.99).round() as u64;
        snap
    }
}

/// Live state of a continuous decay-and-repair workload: the prepared
/// world, the incremental pipeline, the workflow repository being healed in
/// place, and — crucially — the set of workflows still broken after
/// earlier waves, which every subsequent wave retries.
pub struct ContinuousState {
    cfg: ContinuousConfig,
    pipeline: IncrementalPipeline,
    repo: WorkflowRepository,
    archive: BTreeMap<String, EnactmentTrace>,
    families: Vec<FamilyInfo>,
    /// Indices of workflows currently referencing an unavailable module —
    /// the carryover each wave's repair pass must retry.
    broken: BTreeSet<usize>,
    prepare: PrepareStats,
    overall: LatencyHistogram,
    rng: StdRng,
    waves: Vec<WaveReport>,
}

impl ContinuousState {
    /// Builds the world, repository, pipeline bootstrap, and streaming
    /// provenance harvest — everything a wave needs.
    ///
    /// # Panics
    /// Panics if a pre-decay enactment fails (a bug in the scaled
    /// generator).
    pub fn prepare(cfg: &ContinuousConfig) -> ContinuousState {
        let _span = dex_telemetry::span("continuous.prepare");

        // ---- Build: world, pool, repository. -----------------------------
        let t = Instant::now();
        let world = build_scaled(&ScalePlan::new(cfg.scale, cfg.seed));
        let families = world.families;
        let concepts = world.universe.ontology.len();
        let pool = build_text_pool(&world.universe.ontology, cfg.pool_depth, cfg.seed);
        let plan = RepositoryPlan {
            healthy: cfg.workflows,
            equivalent_full: 0,
            equivalent_partial: 0,
            overlap_full: 0,
            overlap_partial: 0,
            overlap_odd: 0,
            none_only: 0,
            seed: cfg.seed,
        };
        let repo = generate_repository(&world.universe, &pool, &plan);
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;

        // ---- Bootstrap the incremental pipeline (warm cache starts here).
        let t = Instant::now();
        let pipeline =
            IncrementalPipeline::bootstrap(world.universe, pool, GenerationConfig::default());
        let bootstrap_ms = t.elapsed().as_secs_f64() * 1000.0;

        // ---- Streaming harvest of the pre-decay provenance. --------------
        // Each workflow is enacted once against the pipeline's warm
        // invocation cache and its trace goes straight into the sink — no
        // corpus is ever materialized for the harvest. The per-workflow
        // trace is archived (that's the provenance store repair verifies
        // against), but harvest memory is bounded by distinct data, not
        // enactment volume.
        let t = Instant::now();
        let mut archive: BTreeMap<String, EnactmentTrace> = BTreeMap::new();
        let harvested = {
            let catalog = &pipeline.universe().catalog;
            let mut sink = HarvestSink::new("scaled-harvest", catalog, classify_concept);
            for stored in &repo.workflows {
                let trace = enact_cached(
                    &stored.workflow,
                    catalog,
                    &stored.sample_inputs,
                    pipeline.invocation_cache(),
                )
                .unwrap_or_else(|e| panic!("pre-decay enactment of {}: {e}", stored.workflow.id));
                sink.absorb(&trace);
                archive.insert(stored.workflow.id.clone(), trace);
            }
            sink.finish()
        };
        let harvest_ms = t.elapsed().as_secs_f64() * 1000.0;

        let prepare = PrepareStats {
            modules: cfg.scale,
            families: families.len(),
            concepts,
            workflows: repo.len(),
            build_ms,
            bootstrap_ms,
            harvest_ms,
            harvested_instances: harvested.len(),
        };

        ContinuousState {
            cfg: cfg.clone(),
            pipeline,
            repo,
            archive,
            families,
            broken: BTreeSet::new(),
            prepare,
            overall: LatencyHistogram::new(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xDECA_F000_0000_0001),
            waves: Vec::new(),
        }
    }

    /// One seeded decay wave: withdraws `fault_pct`% of the still-available
    /// modules and repairs. `None` once nothing is left to withdraw.
    pub fn decay_wave(&mut self) -> Option<&WaveReport> {
        let mut alive: Vec<ModuleId> = self
            .pipeline
            .tracked_ids()
            .iter()
            .filter(|id| self.pipeline.universe().catalog.is_available(id))
            .cloned()
            .collect();
        if alive.is_empty() {
            return None;
        }
        let quota = ((alive.len() * self.cfg.fault_pct as usize) / 100)
            .max(1)
            .min(alive.len());
        let mut victims = Vec::with_capacity(quota);
        for _ in 0..quota {
            let i = self.rng.gen_range(0..alive.len());
            victims.push(alive.swap_remove(i));
        }
        let deltas: Vec<Delta> = victims
            .into_iter()
            .map(|id| Delta::ModuleWithdraw { id })
            .collect();
        Some(self.apply_wave(deltas))
    }

    /// Applies one caller-chosen delta batch as a wave and repairs every
    /// currently broken workflow — the ones this batch broke *and* the
    /// still-broken carryover from earlier waves.
    ///
    /// # Panics
    /// Panics if a withdraw-only batch reports a cold regeneration (a
    /// violation of the incremental engine's contract).
    pub fn apply_wave(&mut self, deltas: Vec<Delta>) -> &WaveReport {
        let _wave_span = dex_telemetry::span("continuous.wave");
        let wave = self.waves.len();
        let withdrawn_ids: BTreeSet<ModuleId> = deltas
            .iter()
            .filter_map(|d| match d {
                Delta::ModuleWithdraw { id } => Some(id.clone()),
                _ => None,
            })
            .collect();
        let withdraw_only = withdrawn_ids.len() == deltas.len();

        let regen_before = dex_telemetry::counter_value("dex.delta.recomputed_modules");
        let delta = self.pipeline.apply(&deltas);
        if withdraw_only {
            assert_eq!(
                delta.regenerated_modules, 0,
                "withdraw-only wave {wave} must not cold-regenerate"
            );
            assert_eq!(
                dex_telemetry::counter_value("dex.delta.recomputed_modules"),
                regen_before,
                "dex.delta counters must confirm zero regenerations in wave {wave}"
            );
        }

        let study = self.pipeline.matching_study();
        let carried = std::mem::take(&mut self.broken);
        // Repair pass = workflows this batch broke ∪ carryover, narrowed to
        // the ones actually broken now (a restore in the batch may have
        // healed carryover outright).
        let catalog = &self.pipeline.universe().catalog;
        let attempts: Vec<usize> = self
            .repo
            .workflows
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                let hit = s
                    .workflow
                    .steps
                    .iter()
                    .any(|step| withdrawn_ids.contains(&step.module));
                (hit || carried.contains(i))
                    && s.workflow
                        .steps
                        .iter()
                        .any(|step| !catalog.is_available(&step.module))
            })
            .map(|(i, _)| i)
            .collect();

        let mut wave_hist = LatencyHistogram::new();
        let mut fully = 0usize;
        let mut partially = 0usize;
        let mut unrepaired = 0usize;
        let mut substitutions = 0usize;
        let repair_t = Instant::now();
        for i in &attempts {
            let single = WorkflowRepository {
                workflows: vec![self.repo.workflows[*i].clone()],
            };
            let mut mini_corpus = ProvenanceCorpus::new("wave");
            if let Some(trace) = self.archive.get(&single.workflows[0].workflow.id) {
                mini_corpus.add(trace.clone());
            }
            let t = Instant::now();
            let (outcomes, summary) = repair_repository_with(
                &single,
                &self.pipeline.universe().catalog,
                &study,
                &mini_corpus,
                &self.pipeline.universe().ontology,
                self.cfg.retry,
            );
            let ns = t.elapsed().as_nanos() as u64;
            wave_hist.record(ns);
            self.overall.record(ns);
            dex_telemetry::observe_ns("dex.repair.workflow_ns", ns);

            fully += summary.fully_repaired;
            partially += summary.partially_repaired;
            unrepaired += summary.unrepaired;
            let outcome = &outcomes[0];
            substitutions += outcome.substitutions.len();
            // Heal in place: the archived trace keeps the pre-decay outputs,
            // which verified substitutes reproduce byte-for-byte, so it
            // stays the valid reference for future waves.
            for s in &outcome.substitutions {
                self.repo.workflows[*i].workflow.steps[s.step].module = s.to.clone();
            }
        }
        let repair_secs = repair_t.elapsed().as_secs_f64();

        let catalog = &self.pipeline.universe().catalog;
        let broken_now: BTreeSet<usize> = self
            .repo
            .workflows
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.workflow
                    .steps
                    .iter()
                    .any(|step| !catalog.is_available(&step.module))
            })
            .map(|(i, _)| i)
            .collect();
        let re_repaired = carried.iter().filter(|i| !broken_now.contains(i)).count();
        let broken_after = broken_now.len();
        self.broken = broken_now;

        dex_telemetry::counter_add("dex.repair.waves", 1);
        dex_telemetry::counter_add("dex.repair.substitutions", substitutions as u64);
        dex_telemetry::counter_add("dex.repair.re_repaired", re_repaired as u64);
        self.waves.push(WaveReport {
            wave,
            withdrawals: withdrawn_ids.len(),
            delta,
            affected_workflows: attempts.len(),
            carried_broken: carried.len(),
            re_repaired,
            fully_repaired: fully,
            partially_repaired: partially,
            unrepaired,
            substitutions,
            broken_after,
            repair_ms: repair_secs * 1000.0,
            repairs_per_sec: if repair_secs > 0.0 {
                substitutions as f64 / repair_secs
            } else {
                0.0
            },
            latency: wave_hist.snapshot(),
        });
        self.waves.last().expect("wave just pushed")
    }

    /// The live incremental pipeline.
    pub fn pipeline(&self) -> &IncrementalPipeline {
        &self.pipeline
    }

    /// The workflow repository, healed in place as waves run.
    pub fn repository(&self) -> &WorkflowRepository {
        &self.repo
    }

    /// Ground-truth behavior families of the scaled world.
    pub fn families(&self) -> &[FamilyInfo] {
        &self.families
    }

    /// Indices of workflows still referencing an unavailable module.
    pub fn broken_workflows(&self) -> &BTreeSet<usize> {
        &self.broken
    }

    /// Setup-phase accounting.
    pub fn prepare_stats(&self) -> &PrepareStats {
        &self.prepare
    }

    /// Finalizes the run into its report.
    pub fn finish(self) -> ContinuousReport {
        ContinuousReport {
            prepare: self.prepare,
            waves: self.waves,
            latency_overall: self.overall.snapshot(),
        }
    }
}

/// Drives one full continuous decay-and-repair run: prepare, then `waves`
/// seeded decay waves (stopping early if the registry empties out).
///
/// # Panics
/// Panics if a pre-decay enactment fails (a bug in the scaled generator) or
/// if a withdraw-only wave reports a cold regeneration (a violation of the
/// incremental engine's contract).
pub fn run_continuous(cfg: &ContinuousConfig) -> ContinuousReport {
    let _span = dex_telemetry::span("continuous.run");
    let mut state = ContinuousState::prepare(cfg);
    for _ in 0..cfg.waves {
        if state.decay_wave().is_none() {
            break;
        }
    }
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::MatchVerdict;

    #[test]
    fn continuous_run_repairs_decayed_workflows_without_regeneration() {
        let cfg = ContinuousConfig {
            scale: 300,
            workflows: 120,
            waves: 3,
            fault_pct: 10,
            seed: 5,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        };
        let report = run_continuous(&cfg);
        assert_eq!(report.prepare.modules, 300);
        assert_eq!(report.prepare.workflows, 120);
        assert!(report.prepare.harvested_instances > 0);
        assert_eq!(report.waves.len(), 3);
        for wave in &report.waves {
            // Withdraw-only waves never cold-regenerate (also asserted
            // inside the driver against the dex.delta counters).
            assert_eq!(wave.delta.regenerated_modules, 0);
            assert!(wave.withdrawals > 0);
        }
        // Families guarantee equivalent twins, so decay at 10% must yield
        // some verified substitutions across three waves.
        assert!(
            report.total_substitutions() > 0,
            "no repairs landed: {:?}",
            report.waves
        );
        assert_eq!(
            report.latency_overall.count,
            report
                .waves
                .iter()
                .map(|w| w.affected_workflows as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn wave_accounting_is_internally_consistent() {
        let cfg = ContinuousConfig {
            scale: 200,
            workflows: 80,
            waves: 2,
            fault_pct: 15,
            seed: 9,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        };
        let report = run_continuous(&cfg);
        for wave in &report.waves {
            assert_eq!(
                wave.affected_workflows,
                wave.fully_repaired + wave.partially_repaired + wave.unrepaired,
                "every repair attempt gets exactly one outcome"
            );
            assert!(wave.latency.count == wave.affected_workflows as u64);
            // A wave can never re-repair more workflows than it carried in.
            assert!(wave.re_repaired <= wave.carried_broken);
        }
        // Wave 0 has nothing to carry.
        assert_eq!(report.waves[0].carried_broken, 0);
        assert_eq!(report.waves[0].re_repaired, 0);
    }

    /// Broken workflows must be *retried* in later waves, not forgotten:
    /// when both members of a two-member behavior family (anchor +
    /// equivalent twin) go down in one wave, every workflow using them is
    /// unrepairable — the captured best substitute is the twin, and the
    /// twin is down. When the twin comes back in a later wave, the
    /// carried-forward broken set must get it repaired (`re_repaired > 0`).
    /// The pre-fix driver only ever looked at workflows hit by the current
    /// wave's withdrawals, so these workflows stayed broken forever.
    #[test]
    fn carried_broken_workflows_re_repair_when_substitute_returns() {
        let cfg = ContinuousConfig {
            scale: 240,
            workflows: 120,
            waves: 0,
            fault_pct: 10,
            seed: 11,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        };
        let mut state = ContinuousState::prepare(&cfg);

        // Two-member families: the anchor's only equivalent is its twin.
        let pairs: Vec<(ModuleId, ModuleId)> = state
            .families()
            .iter()
            .filter(|f| f.members.len() == 2)
            .map(|f| (f.members[0].clone(), f.members[1].clone()))
            .collect();
        let used: Vec<(ModuleId, ModuleId)> = pairs
            .into_iter()
            .filter(|(a, b)| {
                state.repository().workflows.iter().any(|s| {
                    s.workflow
                        .steps
                        .iter()
                        .any(|st| st.module == *a || st.module == *b)
                })
            })
            .collect();
        assert!(
            !used.is_empty(),
            "expected some two-member family to appear in a stored workflow"
        );

        // Wave 0: withdraw every used twin pair *entirely*. The captured
        // best substitute of each member is its equivalent twin — also
        // down — so replay verification cannot succeed for those steps.
        let mut deltas = Vec::new();
        for (a, b) in &used {
            deltas.push(Delta::ModuleWithdraw { id: a.clone() });
            deltas.push(Delta::ModuleWithdraw { id: b.clone() });
        }
        let w0 = state.apply_wave(deltas).clone();
        assert!(
            w0.broken_after > 0,
            "withdrawing whole twin families must leave workflows broken: {w0:?}"
        );
        assert_eq!(w0.re_repaired, 0);

        // Find a still-broken workflow whose broken steps all have a
        // captured Equivalent substitute that is itself withdrawn.
        let mut restore: Option<(usize, Vec<ModuleId>)> = None;
        'workflows: for &i in state.broken_workflows() {
            let mut twins = Vec::new();
            for step in &state.repository().workflows[i].workflow.steps {
                if state
                    .pipeline()
                    .universe()
                    .catalog
                    .is_available(&step.module)
                {
                    continue;
                }
                match state.pipeline().substitute_for(&step.module) {
                    Some((cand, MatchVerdict::Equivalent { .. }))
                        if !state.pipeline().universe().catalog.is_available(cand) =>
                    {
                        twins.push(cand.clone());
                    }
                    _ => continue 'workflows,
                }
            }
            if !twins.is_empty() {
                restore = Some((i, twins));
                break;
            }
        }
        let (target, twins) =
            restore.expect("a broken workflow whose equivalent substitutes are all withdrawn");

        // Wave 1: the substitute family comes back. No new withdrawals —
        // only the carried-forward broken set gives repair anything to do.
        let w1 = state
            .apply_wave(
                twins
                    .into_iter()
                    .map(|id| Delta::ModuleRestore { id })
                    .collect(),
            )
            .clone();
        assert!(
            w1.carried_broken > 0,
            "wave 1 must carry wave 0's broken workflows"
        );
        assert!(
            w1.re_repaired >= 1,
            "restoring the twin must re-repair a carried broken workflow: {w1:?}"
        );
        assert!(
            !state.broken_workflows().contains(&target),
            "the targeted workflow must be healed"
        );
        assert!(w1.broken_after < w0.broken_after);
    }
}
