//! Continuous decay-and-repair over scaled universes — §6's workflow-decay
//! study run as a *workload* instead of a one-shot experiment.
//!
//! One [`run_continuous`] call stands up a scaled world
//! ([`dex_universe::scale::build_scaled`]), bootstraps the incremental
//! pipeline over it, streams the repository's pre-decay provenance through a
//! [`HarvestSink`] (sharing the pipeline's warm invocation cache), and then
//! drives `waves` rounds of seeded decay:
//!
//! 1. a seeded RNG withdraws a percentage of the still-available modules,
//!    routed through [`Delta::ModuleWithdraw`] events so the incremental
//!    engine absorbs them — **zero** cold regenerations per wave, asserted
//!    against the delta accounting;
//! 2. the engine's carried-forward matching study (fingerprint-prefiltered
//!    ranked verdicts captured at withdrawal time) proposes substitutes;
//! 3. every workflow hit by the wave is repaired by trace-replay-verified
//!    substitution and healed in place, with per-workflow repair latency
//!    recorded into the `dex.repair.workflow_ns` histogram and per-wave
//!    p50/p95/p99 + repairs/s derived from the same log-bucketed
//!    [`HistogramSnapshot`] scheme the rest of the telemetry uses.
//!
//! `exp_repair --scale N --waves W` and `bench_repair` are thin front-ends
//! over this module.

use crate::incremental::IncrementalPipeline;
use dex_core::delta::{Delta, DeltaReport};
use dex_core::GenerationConfig;
use dex_modules::{ModuleId, RetryPolicy};
use dex_pool::build_text_pool;
use dex_provenance::{HarvestSink, ProvenanceCorpus};
use dex_repair::{generate_repository, repair_repository_with, RepositoryPlan, WorkflowRepository};
use dex_telemetry::{HistogramSnapshot, BUCKET_BOUNDS_NS};
use dex_universe::scale::{build_scaled, ScalePlan};
use dex_values::classify::classify_concept;
use dex_workflow::{enact_cached, EnactmentTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Knobs of one continuous decay-and-repair run.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Modules in the scaled universe.
    pub scale: usize,
    /// Stored workflows in the repository.
    pub workflows: usize,
    /// Decay waves to drive.
    pub waves: usize,
    /// Percent of the still-available modules withdrawn per wave.
    pub fault_pct: u32,
    /// Master seed (world, repository, and decay schedule all derive from
    /// it).
    pub seed: u64,
    /// Per-concept instances in the backing text pool.
    pub pool_depth: usize,
    /// Retry policy for repair verification replays.
    pub retry: RetryPolicy,
}

impl ContinuousConfig {
    /// A run at `scale` modules with the default workload shape: one stored
    /// workflow per ~5 modules (at least 50), 10% decay per wave.
    pub fn at_scale(scale: usize, waves: usize, seed: u64) -> ContinuousConfig {
        ContinuousConfig {
            scale,
            workflows: (scale / 5).max(50),
            waves,
            fault_pct: 10,
            seed,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        }
    }
}

/// Setup-phase accounting: what was built and what it cost.
#[derive(Debug, Clone)]
pub struct PrepareStats {
    /// Modules in the world (equals the config's `scale`).
    pub modules: usize,
    /// Behavior families generated.
    pub families: usize,
    /// Concepts in the scaled ontology.
    pub concepts: usize,
    /// Stored workflows.
    pub workflows: usize,
    /// Wall time to build world + pool + repository, milliseconds.
    pub build_ms: f64,
    /// Wall time of the incremental pipeline bootstrap, milliseconds.
    pub bootstrap_ms: f64,
    /// Wall time of the streaming provenance harvest, milliseconds.
    pub harvest_ms: f64,
    /// Distinct instances the streaming harvest produced.
    pub harvested_instances: usize,
}

/// Accounting for one decay wave.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index, 0-based.
    pub wave: usize,
    /// Modules withdrawn this wave.
    pub withdrawals: usize,
    /// The incremental engine's delta accounting for the wave's batch.
    pub delta: DeltaReport,
    /// Workflows hit by this wave's withdrawals (repair attempts).
    pub affected_workflows: usize,
    /// Repair outcomes across the attempts.
    pub fully_repaired: usize,
    /// Workflows where only part of the broken steps could be fixed.
    pub partially_repaired: usize,
    /// Workflows where no broken step could be fixed.
    pub unrepaired: usize,
    /// Accepted (replay-verified) substitutions across all attempts.
    pub substitutions: usize,
    /// Workflows still referencing an unavailable module after repair.
    pub broken_after: usize,
    /// Wall time of the wave's repair phase, milliseconds.
    pub repair_ms: f64,
    /// Accepted substitutions per second of repair-phase wall time.
    pub repairs_per_sec: f64,
    /// Per-workflow repair latency distribution for this wave.
    pub latency: HistogramSnapshot,
}

/// Everything a continuous run produced.
#[derive(Debug, Clone)]
pub struct ContinuousReport {
    /// Setup-phase accounting.
    pub prepare: PrepareStats,
    /// Per-wave accounting, in order.
    pub waves: Vec<WaveReport>,
    /// Per-workflow repair latency across all waves.
    pub latency_overall: HistogramSnapshot,
}

impl ContinuousReport {
    /// Accepted substitutions across all waves.
    pub fn total_substitutions(&self) -> usize {
        self.waves.iter().map(|w| w.substitutions).sum()
    }

    /// Minimum per-wave repair throughput, substitutions per second.
    pub fn min_repairs_per_sec(&self) -> f64 {
        self.waves
            .iter()
            .map(|w| w.repairs_per_sec)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Local latency accumulator using the telemetry bucket scheme, so per-wave
/// percentiles come from the same [`HistogramSnapshot::percentile`] estimator
/// as every other latency in the system — without needing the global
/// subscriber enabled.
#[derive(Default)]
struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count,
            sum_ns: self.sum_ns,
            buckets: self.buckets.clone(),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        snap.p50_ns = snap.percentile(0.50).round() as u64;
        snap.p95_ns = snap.percentile(0.95).round() as u64;
        snap.p99_ns = snap.percentile(0.99).round() as u64;
        snap
    }
}

/// Drives one full continuous decay-and-repair run.
///
/// # Panics
/// Panics if a pre-decay enactment fails (a bug in the scaled generator) or
/// if a withdraw-only wave reports a cold regeneration (a violation of the
/// incremental engine's contract).
pub fn run_continuous(cfg: &ContinuousConfig) -> ContinuousReport {
    let _span = dex_telemetry::span("continuous.run");

    // ---- Build: world, pool, repository. ---------------------------------
    let t = Instant::now();
    let world = build_scaled(&ScalePlan::new(cfg.scale, cfg.seed));
    let families = world.families.len();
    let concepts = world.universe.ontology.len();
    let pool = build_text_pool(&world.universe.ontology, cfg.pool_depth, cfg.seed);
    let plan = RepositoryPlan {
        healthy: cfg.workflows,
        equivalent_full: 0,
        equivalent_partial: 0,
        overlap_full: 0,
        overlap_partial: 0,
        overlap_odd: 0,
        none_only: 0,
        seed: cfg.seed,
    };
    let mut repo = generate_repository(&world.universe, &pool, &plan);
    let build_ms = t.elapsed().as_secs_f64() * 1000.0;

    // ---- Bootstrap the incremental pipeline (warm cache starts here). ----
    let t = Instant::now();
    let mut pipeline =
        IncrementalPipeline::bootstrap(world.universe, pool, GenerationConfig::default());
    let bootstrap_ms = t.elapsed().as_secs_f64() * 1000.0;

    // ---- Streaming harvest of the pre-decay provenance. ------------------
    // Each workflow is enacted once against the pipeline's warm invocation
    // cache and its trace goes straight into the sink — no corpus is ever
    // materialized for the harvest. The per-workflow trace is archived
    // (that's the provenance store repair verifies against), but harvest
    // memory is bounded by distinct data, not enactment volume.
    let t = Instant::now();
    let mut archive: BTreeMap<String, EnactmentTrace> = BTreeMap::new();
    let harvested = {
        let catalog = &pipeline.universe().catalog;
        let mut sink = HarvestSink::new("scaled-harvest", catalog, classify_concept);
        for stored in &repo.workflows {
            let trace = enact_cached(
                &stored.workflow,
                catalog,
                &stored.sample_inputs,
                pipeline.invocation_cache(),
            )
            .unwrap_or_else(|e| panic!("pre-decay enactment of {}: {e}", stored.workflow.id));
            sink.absorb(&trace);
            archive.insert(stored.workflow.id.clone(), trace);
        }
        sink.finish()
    };
    let harvest_ms = t.elapsed().as_secs_f64() * 1000.0;

    let prepare = PrepareStats {
        modules: cfg.scale,
        families,
        concepts,
        workflows: repo.len(),
        build_ms,
        bootstrap_ms,
        harvest_ms,
        harvested_instances: harvested.len(),
    };

    // ---- Decay waves. ----------------------------------------------------
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDECA_F000_0000_0001);
    let mut overall = LatencyHistogram::new();
    let mut waves = Vec::with_capacity(cfg.waves);

    for wave in 0..cfg.waves {
        let _wave_span = dex_telemetry::span("continuous.wave");
        let mut alive: Vec<ModuleId> = pipeline
            .tracked_ids()
            .iter()
            .filter(|id| pipeline.universe().catalog.is_available(id))
            .cloned()
            .collect();
        if alive.is_empty() {
            break;
        }
        let quota = ((alive.len() * cfg.fault_pct as usize) / 100)
            .max(1)
            .min(alive.len());
        let mut victims = Vec::with_capacity(quota);
        for _ in 0..quota {
            let i = rng.gen_range(0..alive.len());
            victims.push(alive.swap_remove(i));
        }

        let deltas: Vec<Delta> = victims
            .iter()
            .map(|id| Delta::ModuleWithdraw { id: id.clone() })
            .collect();
        let regen_before = dex_telemetry::counter_value("dex.delta.recomputed_modules");
        let delta = pipeline.apply(&deltas);
        assert_eq!(
            delta.regenerated_modules, 0,
            "withdraw-only wave {wave} must not cold-regenerate"
        );
        assert_eq!(
            dex_telemetry::counter_value("dex.delta.recomputed_modules"),
            regen_before,
            "dex.delta counters must confirm zero regenerations in wave {wave}"
        );

        let study = pipeline.matching_study();
        let victim_set: BTreeSet<&ModuleId> = victims.iter().collect();
        let affected: Vec<usize> = repo
            .workflows
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.workflow
                    .steps
                    .iter()
                    .any(|step| victim_set.contains(&step.module))
            })
            .map(|(i, _)| i)
            .collect();

        let mut wave_hist = LatencyHistogram::new();
        let mut fully = 0usize;
        let mut partially = 0usize;
        let mut unrepaired = 0usize;
        let mut substitutions = 0usize;
        let repair_t = Instant::now();
        for i in &affected {
            let single = WorkflowRepository {
                workflows: vec![repo.workflows[*i].clone()],
            };
            let mut mini_corpus = ProvenanceCorpus::new("wave");
            if let Some(trace) = archive.get(&single.workflows[0].workflow.id) {
                mini_corpus.add(trace.clone());
            }
            let t = Instant::now();
            let (outcomes, summary) = repair_repository_with(
                &single,
                &pipeline.universe().catalog,
                &study,
                &mini_corpus,
                &pipeline.universe().ontology,
                cfg.retry,
            );
            let ns = t.elapsed().as_nanos() as u64;
            wave_hist.record(ns);
            overall.record(ns);
            dex_telemetry::observe_ns("dex.repair.workflow_ns", ns);

            fully += summary.fully_repaired;
            partially += summary.partially_repaired;
            unrepaired += summary.unrepaired;
            let outcome = &outcomes[0];
            substitutions += outcome.substitutions.len();
            // Heal in place: the archived trace keeps the pre-decay outputs,
            // which verified substitutes reproduce byte-for-byte, so it
            // stays the valid reference for future waves.
            for s in &outcome.substitutions {
                repo.workflows[*i].workflow.steps[s.step].module = s.to.clone();
            }
        }
        let repair_secs = repair_t.elapsed().as_secs_f64();
        let broken_after = repo
            .workflows
            .iter()
            .filter(|s| {
                s.workflow
                    .steps
                    .iter()
                    .any(|step| !pipeline.universe().catalog.is_available(&step.module))
            })
            .count();

        dex_telemetry::counter_add("dex.repair.waves", 1);
        dex_telemetry::counter_add("dex.repair.substitutions", substitutions as u64);
        waves.push(WaveReport {
            wave,
            withdrawals: victims.len(),
            delta,
            affected_workflows: affected.len(),
            fully_repaired: fully,
            partially_repaired: partially,
            unrepaired,
            substitutions,
            broken_after,
            repair_ms: repair_secs * 1000.0,
            repairs_per_sec: if repair_secs > 0.0 {
                substitutions as f64 / repair_secs
            } else {
                0.0
            },
            latency: wave_hist.snapshot(),
        });
    }

    ContinuousReport {
        prepare,
        waves,
        latency_overall: overall.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_run_repairs_decayed_workflows_without_regeneration() {
        let cfg = ContinuousConfig {
            scale: 300,
            workflows: 120,
            waves: 3,
            fault_pct: 10,
            seed: 5,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        };
        let report = run_continuous(&cfg);
        assert_eq!(report.prepare.modules, 300);
        assert_eq!(report.prepare.workflows, 120);
        assert!(report.prepare.harvested_instances > 0);
        assert_eq!(report.waves.len(), 3);
        for wave in &report.waves {
            // Withdraw-only waves never cold-regenerate (also asserted
            // inside the driver against the dex.delta counters).
            assert_eq!(wave.delta.regenerated_modules, 0);
            assert!(wave.withdrawals > 0);
        }
        // Families guarantee equivalent twins, so decay at 10% must yield
        // some verified substitutions across three waves.
        assert!(
            report.total_substitutions() > 0,
            "no repairs landed: {:?}",
            report.waves
        );
        assert_eq!(
            report.latency_overall.count,
            report
                .waves
                .iter()
                .map(|w| w.affected_workflows as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn wave_accounting_is_internally_consistent() {
        let cfg = ContinuousConfig {
            scale: 200,
            workflows: 80,
            waves: 2,
            fault_pct: 15,
            seed: 9,
            pool_depth: 4,
            retry: RetryPolicy::none(),
        };
        let report = run_continuous(&cfg);
        for wave in &report.waves {
            assert_eq!(
                wave.affected_workflows,
                wave.fully_repaired + wave.partially_repaired + wave.unrepaired,
                "every affected workflow gets exactly one outcome"
            );
            assert!(wave.latency.count == wave.affected_workflows as u64);
        }
    }
}
