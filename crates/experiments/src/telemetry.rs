//! Opt-in telemetry for the experiment binaries.
//!
//! Every binary calls [`TelemetryRun::from_env`] first thing in `main`.
//! When the run was started with `--telemetry[=PATH]` (or the
//! `DEX_TELEMETRY` environment variable), the global `dex-telemetry`
//! subscriber is enabled and [`TelemetryRun::finish`] writes the collected
//! [`dex_telemetry::RunReport`] as pretty-printed JSON — `TELEMETRY.json`
//! by default, analogous to `BENCH_matching.json` for the perf trajectory.
//! Without the flag everything stays disabled and the binaries behave
//! exactly as before.
//!
//! Switches (each also accepts `--flag PATH` as two arguments):
//!
//! * `--telemetry[=PATH]` / `DEX_TELEMETRY` — enable, write the run report.
//! * `--telemetry-out=PATH` / `DEX_TELEMETRY_OUT` — override the report
//!   path (implies `--telemetry`), so concurrent CI jobs and bench runs
//!   don't clobber each other's `TELEMETRY.json`.
//! * `--trace-out=PATH` / `DEX_TRACE_OUT` — also export the span forest as
//!   Perfetto-loadable Chrome trace JSON (implies enabling telemetry).
//! * `--flight-out=PATH` / `DEX_FLIGHT_OUT` — where flight-recorder
//!   post-mortems land (`FLIGHT.json` by default whenever telemetry is on).
//!
//! `DEX_LOG=<error|warn|info|debug|trace>` sets the event verbosity and
//! echoes events to stderr as they happen.
//!
//! While telemetry is active a panic hook captures the flight-recorder
//! window to the flight path before unwinding continues, so a crashed
//! seeded-fault run leaves a post-mortem instead of a mystery.

use std::path::PathBuf;

/// Default run-report artifact path, relative to the working directory.
pub const DEFAULT_PATH: &str = "TELEMETRY.json";

/// Default flight-recorder post-mortem path.
pub const DEFAULT_FLIGHT_PATH: &str = "FLIGHT.json";

/// The fully parsed telemetry-related options of one run. Pure data —
/// [`RunOptions::parse`] touches no globals, so tests can drive it with
/// synthetic argument lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Run-report path, when the report was requested.
    pub telemetry: Option<PathBuf>,
    /// Chrome trace export path, when requested.
    pub trace: Option<PathBuf>,
    /// Flight-recorder dump path override.
    pub flight: Option<PathBuf>,
}

impl RunOptions {
    /// Whether any option turns the telemetry subscriber on.
    pub fn is_active(&self) -> bool {
        self.telemetry.is_some() || self.trace.is_some()
    }

    /// Parses the recognized switches out of `args` (`--flag=value` and
    /// `--flag value` forms both accepted), falling back to the environment
    /// via `env` for unset options.
    pub fn parse(args: &[String], env: &dyn Fn(&str) -> Option<String>) -> RunOptions {
        let mut options = RunOptions::default();
        let mut out_override: Option<PathBuf> = None;
        let mut i = 0;
        // `--flag value`: consume the next argument when it isn't a switch.
        let value_after = |args: &[String], i: usize| -> Option<(PathBuf, usize)> {
            match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => Some((PathBuf::from(next), i + 1)),
                _ => None,
            }
        };
        while i < args.len() {
            let arg = &args[i];
            if arg == "--telemetry" {
                options.telemetry = Some(PathBuf::from(DEFAULT_PATH));
            } else if let Some(p) = arg.strip_prefix("--telemetry=") {
                options.telemetry = Some(PathBuf::from(p));
            } else if let Some(p) = arg.strip_prefix("--telemetry-out=") {
                out_override = Some(PathBuf::from(p));
            } else if arg == "--telemetry-out" {
                if let Some((p, next)) = value_after(args, i) {
                    out_override = Some(p);
                    i = next;
                }
            } else if let Some(p) = arg.strip_prefix("--trace-out=") {
                options.trace = Some(PathBuf::from(p));
            } else if arg == "--trace-out" {
                if let Some((p, next)) = value_after(args, i) {
                    options.trace = Some(p);
                    i = next;
                }
            } else if let Some(p) = arg.strip_prefix("--flight-out=") {
                options.flight = Some(PathBuf::from(p));
            } else if arg == "--flight-out" {
                if let Some((p, next)) = value_after(args, i) {
                    options.flight = Some(p);
                    i = next;
                }
            }
            i += 1;
        }
        if options.telemetry.is_none() {
            if let Some(v) = env("DEX_TELEMETRY") {
                if !v.is_empty() && v != "0" {
                    options.telemetry = Some(if v == "1" {
                        PathBuf::from(DEFAULT_PATH)
                    } else {
                        PathBuf::from(v)
                    });
                }
            }
        }
        if out_override.is_none() {
            out_override = env("DEX_TELEMETRY_OUT")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from);
        }
        if let Some(out) = out_override {
            // An explicit output path is a request for the report.
            options.telemetry = Some(out);
        }
        if options.trace.is_none() {
            options.trace = env("DEX_TRACE_OUT")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from);
        }
        if options.flight.is_none() {
            options.flight = env("DEX_FLIGHT_OUT")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from);
        }
        options
    }
}

/// Handle for one instrumented experiment run.
///
/// Holds the output paths when telemetry was requested; dropping it without
/// calling [`finish`](TelemetryRun::finish) writes nothing.
pub struct TelemetryRun {
    options: RunOptions,
}

impl TelemetryRun {
    /// Parses the process arguments and environment, enabling telemetry
    /// (and the flight-recorder dump path + panic hook) if requested.
    pub fn from_env() -> TelemetryRun {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let options = RunOptions::parse(&args, &|name| std::env::var(name).ok());
        if let Some(level) = std::env::var("DEX_LOG")
            .ok()
            .and_then(|v| dex_telemetry::Level::parse(&v))
        {
            dex_telemetry::set_verbosity(level);
            dex_telemetry::set_stderr_echo(true);
            // Events need the subscriber on to be recorded at all.
            dex_telemetry::enable();
        }
        if options.is_active() {
            dex_telemetry::enable();
            let flight = options
                .flight
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_FLIGHT_PATH));
            dex_telemetry::set_flight_path(Some(flight));
            install_flight_panic_hook();
        }
        TelemetryRun { options }
    }

    /// Whether this run records telemetry.
    pub fn is_active(&self) -> bool {
        self.options.is_active()
    }

    /// Collects the run report under `label` and writes the requested
    /// artifacts: the report JSON, the Chrome trace, and (when no
    /// post-mortem was already taken) the flight window.
    ///
    /// No-op when telemetry was not requested. IO or serialization problems
    /// are reported on stderr instead of failing the experiment — the tables
    /// were already printed by then.
    pub fn finish(self, label: &str) {
        if !self.options.is_active() {
            return;
        }
        let report = dex_telemetry::collect(label);
        if let Some(path) = &self.options.telemetry {
            match report.to_json() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json + "\n") {
                        eprintln!("telemetry: cannot write {}: {e}", path.display());
                    } else {
                        eprintln!(
                            "telemetry: wrote {} ({} spans, {} counters, {} events)",
                            path.display(),
                            report.span_count(),
                            report.counters.len(),
                            report.events.len()
                        );
                    }
                }
                Err(e) => eprintln!("telemetry: cannot serialize report: {e}"),
            }
        }
        if let Some(path) = &self.options.trace {
            match dex_telemetry::chrome_trace_json(&report) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json + "\n") {
                        eprintln!("telemetry: cannot write trace {}: {e}", path.display());
                    } else {
                        eprintln!(
                            "telemetry: wrote {} ({} trace events)",
                            path.display(),
                            report.span_count()
                        );
                    }
                }
                Err(e) => eprintln!("telemetry: cannot serialize trace: {e}"),
            }
        }
        if dex_telemetry::dump_flight_fallback("run end") {
            eprintln!("telemetry: wrote flight-recorder window (run end)");
        }
    }
}

/// Chains a panic hook that captures the flight window before unwinding:
/// the hook records the panic itself as a flight event, dumps to the
/// configured flight path, then defers to the previous hook. Installed once
/// per process.
///
/// The capture path is hardened against double panics: a panic raised
/// *inside* the capture (a poisoned lock, an allocation failure, a bug in
/// the dump path) re-enters this hook, where a thread-local guard makes the
/// re-entry skip straight to the previous hook, and the surrounding
/// `catch_unwind` contains the inner unwind — so the original panic still
/// unwinds normally instead of aborting the process and losing the
/// post-mortem.
pub fn install_flight_panic_hook() {
    static HOOKED: std::sync::Once = std::sync::Once::new();
    HOOKED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            thread_local! {
                static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
            }
            let first_entry = IN_HOOK.with(|in_hook| !in_hook.replace(true));
            if first_entry {
                if dex_telemetry::flight_on() {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        dex_telemetry::flight(
                            dex_telemetry::FlightKind::Panic,
                            "panic",
                            info.to_string(),
                            0,
                        );
                        dex_telemetry::dump_flight("panic");
                    }));
                }
                IN_HOOK.with(|in_hook| in_hook.set(false));
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn inactive_without_flag_or_env() {
        let options = RunOptions::parse(&args(&["--fault-rate=10"]), &no_env);
        assert!(!options.is_active());
        // The process-level wrapper is equally inert (guard against ambient
        // env from the caller's shell).
        if std::env::var("DEX_TELEMETRY").is_ok()
            || std::env::var("DEX_TELEMETRY_OUT").is_ok()
            || std::env::var("DEX_TRACE_OUT").is_ok()
            || std::env::var("DEX_LOG").is_ok()
        {
            return;
        }
        let run = TelemetryRun::from_env();
        assert!(!run.is_active());
        run.finish("noop"); // must be a no-op without the flag
    }

    #[test]
    fn telemetry_flag_forms() {
        let options = RunOptions::parse(&args(&["--telemetry"]), &no_env);
        assert_eq!(options.telemetry, Some(PathBuf::from(DEFAULT_PATH)));
        let options = RunOptions::parse(&args(&["--telemetry=custom.json"]), &no_env);
        assert_eq!(options.telemetry, Some(PathBuf::from("custom.json")));
    }

    #[test]
    fn telemetry_out_overrides_and_implies_telemetry() {
        let options = RunOptions::parse(&args(&["--telemetry-out", "job7.json"]), &no_env);
        assert_eq!(options.telemetry, Some(PathBuf::from("job7.json")));
        assert!(options.is_active());
        let options = RunOptions::parse(
            &args(&["--telemetry", "--telemetry-out=job8.json"]),
            &no_env,
        );
        assert_eq!(options.telemetry, Some(PathBuf::from("job8.json")));
        // Env fallback.
        let env = |name: &str| (name == "DEX_TELEMETRY_OUT").then(|| "env.json".to_string());
        let options = RunOptions::parse(&[], &env);
        assert_eq!(options.telemetry, Some(PathBuf::from("env.json")));
    }

    #[test]
    fn trace_and_flight_paths_parse_in_both_forms() {
        let options = RunOptions::parse(
            &args(&["--trace-out", "t.json", "--flight-out=f.json"]),
            &no_env,
        );
        assert_eq!(options.trace, Some(PathBuf::from("t.json")));
        assert_eq!(options.flight, Some(PathBuf::from("f.json")));
        assert!(options.is_active(), "trace export implies telemetry");
        assert!(options.telemetry.is_none(), "but not the report artifact");
        // A dangling `--trace-out` followed by another switch takes nothing.
        let options = RunOptions::parse(&args(&["--trace-out", "--telemetry"]), &no_env);
        assert!(options.trace.is_none());
        assert!(options.telemetry.is_some());
        // Env fallbacks.
        let env = |name: &str| match name {
            "DEX_TRACE_OUT" => Some("env-trace.json".to_string()),
            "DEX_FLIGHT_OUT" => Some("env-flight.json".to_string()),
            _ => None,
        };
        let options = RunOptions::parse(&[], &env);
        assert_eq!(options.trace, Some(PathBuf::from("env-trace.json")));
        assert_eq!(options.flight, Some(PathBuf::from("env-flight.json")));
    }
}
