//! Opt-in telemetry for the experiment binaries.
//!
//! Every binary calls [`TelemetryRun::from_env`] first thing in `main`.
//! When the run was started with `--telemetry[=PATH]` (or the
//! `DEX_TELEMETRY` environment variable), the global `dex-telemetry`
//! subscriber is enabled and [`TelemetryRun::finish`] writes the collected
//! [`dex_telemetry::RunReport`] as pretty-printed JSON — `TELEMETRY.json`
//! by default, analogous to `BENCH_matching.json` for the perf trajectory.
//! Without the flag everything stays disabled and the binaries behave
//! exactly as before.
//!
//! `DEX_LOG=<error|warn|info|debug|trace>` sets the event verbosity and
//! echoes events to stderr as they happen.

use std::path::PathBuf;

/// Default artifact path, relative to the working directory.
pub const DEFAULT_PATH: &str = "TELEMETRY.json";

/// Handle for one instrumented experiment run.
///
/// Holds the output path when telemetry was requested; dropping it without
/// calling [`finish`](TelemetryRun::finish) writes nothing.
pub struct TelemetryRun {
    path: Option<PathBuf>,
}

impl TelemetryRun {
    /// Parses the process arguments and environment, enabling telemetry if
    /// requested.
    ///
    /// Recognized switches: `--telemetry` (default path), `--telemetry=PATH`,
    /// and the `DEX_TELEMETRY` variable (`1` or a path). `DEX_LOG` sets the
    /// event verbosity and turns on stderr echo even when the report artifact
    /// was not requested.
    pub fn from_env() -> TelemetryRun {
        let mut path: Option<PathBuf> = None;
        for arg in std::env::args().skip(1) {
            if arg == "--telemetry" {
                path = Some(PathBuf::from(DEFAULT_PATH));
            } else if let Some(p) = arg.strip_prefix("--telemetry=") {
                path = Some(PathBuf::from(p));
            }
        }
        if path.is_none() {
            if let Ok(v) = std::env::var("DEX_TELEMETRY") {
                if !v.is_empty() && v != "0" {
                    path = Some(if v == "1" {
                        PathBuf::from(DEFAULT_PATH)
                    } else {
                        PathBuf::from(v)
                    });
                }
            }
        }
        if let Ok(level) = std::env::var("DEX_LOG") {
            if let Some(level) = dex_telemetry::Level::parse(&level) {
                dex_telemetry::set_verbosity(level);
                dex_telemetry::set_stderr_echo(true);
                // Events need the subscriber on to be recorded at all.
                dex_telemetry::enable();
            }
        }
        if path.is_some() {
            dex_telemetry::enable();
        }
        TelemetryRun { path }
    }

    /// Whether this run records telemetry.
    pub fn is_active(&self) -> bool {
        self.path.is_some()
    }

    /// Collects the run report under `label` and writes the JSON artifact.
    ///
    /// No-op when telemetry was not requested. IO or serialization problems
    /// are reported on stderr instead of failing the experiment — the tables
    /// were already printed by then.
    pub fn finish(self, label: &str) {
        let Some(path) = self.path else { return };
        let report = dex_telemetry::collect(label);
        match report.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json + "\n") {
                    eprintln!("telemetry: cannot write {}: {e}", path.display());
                } else {
                    eprintln!(
                        "telemetry: wrote {} ({} spans, {} counters, {} events)",
                        path.display(),
                        report.span_count(),
                        report.counters.len(),
                        report.events.len()
                    );
                }
            }
            Err(e) => eprintln!("telemetry: cannot serialize report: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_without_flag_or_env() {
        // The test harness never passes --telemetry; DEX_TELEMETRY is only
        // read when unset args leave path empty, so guard against ambient env.
        if std::env::var("DEX_TELEMETRY").is_ok() || std::env::var("DEX_LOG").is_ok() {
            return;
        }
        let run = TelemetryRun::from_env();
        assert!(!run.is_active());
        run.finish("noop"); // must be a no-op without the flag
    }
}
