//! Building annotated instance pools out of provenance traces (§4.1).

use crate::corpus::ProvenanceCorpus;
use dex_core::ValueClassifier;
use dex_modules::ModuleCatalog;
use dex_pool::{AnnotatedInstance, InstancePool};
use dex_values::Value;
use dex_workflow::EnactmentTrace;
use std::collections::HashSet;

/// Incremental harvest: absorbs enactment traces one at a time into a
/// concept-indexed pool, so a caller can enact → absorb → drop each trace
/// without ever materializing a corpus. Memory is bounded by *distinct*
/// harvested data, not by trace volume — the property the repository-scale
/// pipelines rely on.
///
/// [`harvest_pool`] is implemented on top of this sink, so the streaming and
/// materialized paths produce byte-identical pools by construction (pinned
/// by property tests in `dex-repair`).
pub struct HarvestSink<'c> {
    pool: InstancePool,
    seen: HashSet<(Value, String)>,
    catalog: &'c ModuleCatalog,
    classifier: ValueClassifier,
    values_seen: u64,
    skipped: u64,
    duplicates: u64,
}

impl<'c> HarvestSink<'c> {
    /// A fresh sink producing a pool named `name`. The annotation rules are
    /// those of [`harvest_pool`]: classifier first, declared parameter
    /// concept (via `catalog`) as fallback, skip when neither applies.
    pub fn new(
        name: impl Into<String>,
        catalog: &'c ModuleCatalog,
        classifier: ValueClassifier,
    ) -> Self {
        HarvestSink {
            pool: InstancePool::new(name),
            seen: HashSet::new(),
            catalog,
            classifier,
            values_seen: 0,
            skipped: 0,
            duplicates: 0,
        }
    }

    /// Streams one trace into the pool; the trace can be dropped afterwards.
    pub fn absorb(&mut self, trace: &EnactmentTrace) {
        for record in &trace.steps {
            let descriptor = self.catalog.descriptor(&record.module);
            let sides: [(&[Value], bool); 2] = [(&record.inputs, false), (&record.outputs, true)];
            for (values, is_output) in sides {
                for (idx, value) in values.iter().enumerate() {
                    if value.is_null() {
                        continue;
                    }
                    self.values_seen += 1;
                    let declared = descriptor.and_then(|d| {
                        let params = if is_output { &d.outputs } else { &d.inputs };
                        params.get(idx).map(|p| p.semantic.as_str())
                    });
                    let concept = match (self.classifier)(value) {
                        Some(c) => c.to_string(),
                        None => match declared {
                            Some(c) => c.to_string(),
                            None => {
                                self.skipped += 1;
                                continue;
                            }
                        },
                    };
                    if self.seen.insert((value.clone(), concept.clone())) {
                        let parameter = declared
                            .map(|_| {
                                let d = descriptor.expect("declared implies descriptor");
                                let params = if is_output { &d.outputs } else { &d.inputs };
                                params[idx].name.clone()
                            })
                            .unwrap_or_else(|| format!("arg{idx}"));
                        self.pool.add(AnnotatedInstance::from_provenance(
                            value.clone(),
                            concept,
                            trace.workflow.clone(),
                            record.module.to_string(),
                            parameter,
                        ));
                    } else {
                        self.duplicates += 1;
                    }
                }
            }
        }
    }

    /// Instances harvested so far.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been harvested yet.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Publishes the harvest counters and yields the finished pool.
    pub fn finish(self) -> InstancePool {
        if dex_telemetry::is_enabled() {
            dex_telemetry::counter_add("dex.provenance.values_seen", self.values_seen);
            dex_telemetry::counter_add(
                "dex.provenance.instances_harvested",
                self.pool.len() as u64,
            );
            dex_telemetry::counter_add("dex.provenance.values_skipped", self.skipped);
            dex_telemetry::counter_add("dex.provenance.duplicates_collapsed", self.duplicates);
            dex_telemetry::event!(
                dex_telemetry::Level::Info,
                "provenance",
                "harvested {} instances from {} values ({} duplicates, {} skipped)",
                self.pool.len(),
                self.values_seen,
                self.duplicates,
                self.skipped
            );
        }
        self.pool
    }
}

/// Harvests a pool of annotated instances from a corpus.
///
/// Every input and output value of every recorded invocation becomes a pool
/// instance. The annotation is the most specific concept the `classifier`
/// recognizes in the value; when the value is syntactically opaque, the
/// declared concept of the parameter that carried it (looked up in
/// `catalog`) is used instead — exactly the paper's "thanks to those
/// annotations" fallback. Values whose carrying module is unknown *and*
/// unclassifiable are skipped. Duplicate `(value, concept)` pairs are kept
/// only once, so the pool size is bounded by distinct data, not by trace
/// volume.
///
/// This is the materialized-corpus convenience over [`HarvestSink`]; callers
/// that produce traces on the fly should feed a sink directly and skip the
/// corpus.
pub fn harvest_pool(
    corpus: &ProvenanceCorpus,
    catalog: &ModuleCatalog,
    classifier: ValueClassifier,
) -> InstancePool {
    let _span = dex_telemetry::span("provenance.harvest");
    let mut sink = HarvestSink::new(format!("harvest-{}", corpus.name), catalog, classifier);
    for trace in corpus.traces() {
        sink.absorb(trace);
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
    use dex_values::classify::classify_concept;
    use dex_values::StructuralType;
    use dex_workflow::{EnactmentTrace, StepRecord};

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "m",
                "M",
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "acc",
                    StructuralType::Text,
                    "UniprotAccession",
                )],
                vec![Parameter::required(
                    "blob",
                    StructuralType::Text,
                    "Document",
                )],
            ),
            |i| Ok(vec![i[0].clone()]),
        ));
        c
    }

    fn corpus_with(input: &str, output: &str) -> ProvenanceCorpus {
        let mut corpus = ProvenanceCorpus::new("t");
        corpus.add(EnactmentTrace {
            workflow: "w".into(),
            inputs: vec![Value::text(input)],
            steps: vec![StepRecord {
                step: 0,
                step_name: "s".into(),
                module: "m".into(),
                inputs: vec![Value::text(input)],
                outputs: vec![Value::text(output)],
            }],
            outputs: vec![],
        });
        corpus
    }

    #[test]
    fn classifiable_values_use_syntactic_concept() {
        let corpus = corpus_with("P12345", "GO:0008150");
        let pool = harvest_pool(&corpus, &catalog(), classify_concept);
        assert_eq!(pool.realizations_of("UniprotAccession").count(), 1);
        assert_eq!(pool.realizations_of("GOTerm").count(), 1);
    }

    #[test]
    fn opaque_values_fall_back_to_declared_concept() {
        // "%%%" is unclassifiable; the output parameter declares Document.
        let corpus = corpus_with("P12345", "%%%");
        let pool = harvest_pool(&corpus, &catalog(), classify_concept);
        assert_eq!(pool.realizations_of("Document").count(), 1);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let mut corpus = corpus_with("P12345", "GO:0008150");
        for t in corpus_with("P12345", "GO:0008150").traces() {
            corpus.add(t.clone());
        }
        let pool = harvest_pool(&corpus, &catalog(), classify_concept);
        assert_eq!(pool.len(), 2, "one accession + one GO term");
    }

    #[test]
    fn unknown_module_and_opaque_value_is_skipped() {
        let mut corpus = ProvenanceCorpus::new("t");
        corpus.add(EnactmentTrace {
            workflow: "w".into(),
            inputs: vec![],
            steps: vec![StepRecord {
                step: 0,
                step_name: "s".into(),
                module: "ghost".into(),
                inputs: vec![Value::text("%%%"), Value::text("P12345")],
                outputs: vec![Value::Null],
            }],
            outputs: vec![],
        });
        let pool = harvest_pool(&corpus, &catalog(), classify_concept);
        // Opaque + unknown module skipped; the accession still classifies.
        assert_eq!(pool.len(), 1);
        let inst = pool.realizations_of("UniprotAccession").next().unwrap();
        assert!(inst.source.to_string().contains("ghost"));
    }
}
