//! # dex-provenance
//!
//! Workflow provenance: the corpus of enactment traces that plays the role
//! of the Taverna provenance corpus in the paper's evaluation (§4.1) and of
//! the trace archives trawled for the §6 repair study.
//!
//! Two consumers:
//!
//! * **Pool harvesting** ([`harvest_pool`]) — §4.1: "Thanks to those
//!   annotations, we were able to semantically annotate the data instances
//!   used and produced by such modules in the provenance corpus, thereby
//!   constructing the pool of annotated instances". Values are annotated
//!   with the most specific concept recoverable from the value itself,
//!   falling back to the parameter's declared concept.
//! * **Data-example reconstruction** ([`reconstruct_examples`]) — §6: for a
//!   module that no longer exists, its past invocations *are* its data
//!   examples ("there is a source of information that can be utilized to
//!   construct the data examples … namely workflow provenance traces").

pub mod corpus;
pub mod harvest;
pub mod reconstruct;

pub use corpus::ProvenanceCorpus;
pub use harvest::{harvest_pool, HarvestSink};
pub use reconstruct::reconstruct_examples;
