//! Reconstructing data examples for modules that no longer exist (§6).

use crate::corpus::ProvenanceCorpus;
use dex_core::{Binding, DataExample, ExampleSet};
use dex_modules::{ModuleDescriptor, ModuleId};

/// Rebuilds `∆(m)` for a module from its recorded invocations.
///
/// Every distinct recorded `(inputs, outputs)` pair becomes one
/// reconstructed [`DataExample`]. The module itself is never invoked — the
/// whole point is that it may be unavailable. The `descriptor` (from an old
/// registry entry) supplies parameter names for the bindings.
///
/// Returns an empty set when the corpus never observed the module — the
/// paper's own limitation: "we were able to construct data examples that
/// characterize 72 unavailable scientific modules", not all of them.
pub fn reconstruct_examples(
    corpus: &ProvenanceCorpus,
    module: &ModuleId,
    descriptor: &ModuleDescriptor,
) -> ExampleSet {
    let mut set = ExampleSet::new(module.clone());
    for record in corpus.invocations_of(module) {
        let inputs: Vec<Binding> = descriptor
            .inputs
            .iter()
            .zip(&record.inputs)
            .map(|(p, v)| Binding::new(p.name.clone(), v.clone()))
            .collect();
        let outputs: Vec<Binding> = descriptor
            .outputs
            .iter()
            .zip(&record.outputs)
            .map(|(p, v)| Binding::new(p.name.clone(), v.clone()))
            .collect();
        let example = DataExample::reconstructed(inputs, outputs);
        if !set.examples.contains(&example) {
            set.examples.push(example);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{ModuleKind, Parameter};
    use dex_values::{StructuralType, Value};
    use dex_workflow::{EnactmentTrace, StepRecord};

    fn descriptor() -> ModuleDescriptor {
        ModuleDescriptor::new(
            "m",
            "M",
            ModuleKind::SoapService,
            vec![Parameter::required(
                "acc",
                StructuralType::Text,
                "UniprotAccession",
            )],
            vec![Parameter::required(
                "record",
                StructuralType::Text,
                "UniprotRecord",
            )],
        )
    }

    fn corpus() -> ProvenanceCorpus {
        let mut c = ProvenanceCorpus::new("t");
        for (i, acc) in ["P11111", "P22222", "P11111"].iter().enumerate() {
            c.add(EnactmentTrace {
                workflow: format!("w{i}"),
                inputs: vec![],
                steps: vec![StepRecord {
                    step: 0,
                    step_name: "s".into(),
                    module: "m".into(),
                    inputs: vec![Value::text(*acc)],
                    outputs: vec![Value::text(format!("record-of-{acc}"))],
                }],
                outputs: vec![],
            });
        }
        c
    }

    #[test]
    fn reconstruction_dedupes_identical_invocations() {
        let set = reconstruct_examples(&corpus(), &"m".into(), &descriptor());
        assert_eq!(set.len(), 2, "P11111 recorded twice, kept once");
        assert_eq!(set.examples[0].inputs[0].parameter, "acc");
        assert_eq!(set.examples[0].outputs[0].parameter, "record");
        assert!(set.examples[0].input_partitions.is_empty());
    }

    #[test]
    fn unobserved_module_yields_empty_set() {
        let set = reconstruct_examples(&corpus(), &"ghost".into(), &descriptor());
        assert!(set.is_empty());
    }
}
