//! The trace corpus.

use dex_modules::ModuleId;
use dex_workflow::{EnactmentTrace, StepRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A corpus of workflow enactment traces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProvenanceCorpus {
    /// Corpus name (e.g. `"taverna-2013"`).
    pub name: String,
    traces: Vec<EnactmentTrace>,
}

impl ProvenanceCorpus {
    /// An empty corpus.
    pub fn new(name: impl Into<String>) -> Self {
        ProvenanceCorpus {
            name: name.into(),
            traces: Vec::new(),
        }
    }

    /// Adds a trace.
    pub fn add(&mut self, trace: EnactmentTrace) {
        self.traces.push(trace);
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterates all traces.
    pub fn traces(&self) -> impl Iterator<Item = &EnactmentTrace> {
        self.traces.iter()
    }

    /// Total step invocations recorded.
    pub fn invocation_count(&self) -> usize {
        self.traces.iter().map(|t| t.steps.len()).sum()
    }

    /// The distinct modules observed across all traces, sorted.
    pub fn modules_observed(&self) -> BTreeSet<ModuleId> {
        self.traces
            .iter()
            .flat_map(|t| t.steps.iter().map(|s| s.module.clone()))
            .collect()
    }

    /// All recorded invocations of one module, in trace order.
    pub fn invocations_of<'a>(
        &'a self,
        module: &'a ModuleId,
    ) -> impl Iterator<Item = &'a StepRecord> {
        self.traces
            .iter()
            .flat_map(move |t| t.steps.iter().filter(move |s| &s.module == module))
    }

    /// Serializes the corpus to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Loads a corpus from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<ProvenanceCorpus> {
        serde_json::from_str(json)
    }

    /// Traces of one workflow.
    pub fn traces_of<'a>(
        &'a self,
        workflow_id: &'a str,
    ) -> impl Iterator<Item = &'a EnactmentTrace> {
        self.traces
            .iter()
            .filter(move |t| t.workflow == workflow_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_values::Value;

    fn trace(wf: &str, module: &str, input: &str, output: &str) -> EnactmentTrace {
        EnactmentTrace {
            workflow: wf.to_string(),
            inputs: vec![Value::text(input)],
            steps: vec![StepRecord {
                step: 0,
                step_name: "s".into(),
                module: module.into(),
                inputs: vec![Value::text(input)],
                outputs: vec![Value::text(output)],
            }],
            outputs: vec![Value::text(output)],
        }
    }

    #[test]
    fn corpus_accumulates_and_indexes() {
        let mut c = ProvenanceCorpus::new("t");
        assert!(c.is_empty());
        c.add(trace("w1", "m1", "a", "b"));
        c.add(trace("w1", "m2", "c", "d"));
        c.add(trace("w2", "m1", "e", "f"));
        assert_eq!(c.len(), 3);
        assert_eq!(c.invocation_count(), 3);
        assert_eq!(c.modules_observed().len(), 2);
        assert_eq!(c.invocations_of(&"m1".into()).count(), 2);
        assert_eq!(c.traces_of("w1").count(), 2);
        assert_eq!(c.traces_of("w3").count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = ProvenanceCorpus::new("t");
        c.add(trace("w", "m", "x", "y"));
        let json = c.to_json().unwrap();
        let back = ProvenanceCorpus::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.name, "t");
        assert_eq!(back.invocations_of(&"m".into()).count(), 1);
    }
}
