//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`.
//!
//! Implements the derive surface this workspace uses, without `syn`/`quote`:
//!
//! * structs with named fields (honoring `#[serde(skip)]` — skipped fields
//!   are omitted on serialize and `Default::default()`-filled on deserialize);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences);
//! * enums with unit, tuple, and struct variants, in serde's externally
//!   tagged representation (`"Variant"`, `{"Variant": value}`,
//!   `{"Variant": {fields…}}`).
//!
//! Generic types are not supported (none are derived in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes, returning whether any was `#[serde(skip)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut skip = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        if attr_is_serde_skip(g.stream()) {
                            skip = true;
                        }
                    } else {
                        panic!("serde_derive shim: `#` not followed by an attribute group");
                    }
                }
                _ => return skip,
            }
        }
    }

    /// Consumes a visibility modifier (`pub`, `pub(crate)`, …) if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected {what}, got {other:?}"),
        }
    }

    /// Consumes type tokens up to a top-level (angle-depth-0) comma, which is
    /// also consumed.
    fn skip_type(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        cur.skip_type();
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        cur.skip_type();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cur.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Consume trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(
                        "        let mut fields: Vec<(String, ::serde::Content)> = Vec::new();\n",
                    );
                    for f in fs.iter().filter(|f| !f.skip) {
                        out.push_str(&format!(
                            "        fields.push((String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})));\n",
                            f.name
                        ));
                    }
                    out.push_str("        ::serde::Content::Map(fields)\n");
                }
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::to_content(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    out.push_str(&format!(
                        "        ::serde::Content::Seq(vec![{}])\n",
                        items.join(", ")
                    ));
                }
                Fields::Unit => {
                    out.push_str("        ::serde::Content::Null\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(f0) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), ::serde::Content::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(String::from(\"{0}\"), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(String::from(\"{vn}\"), ::serde::Content::Map(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

fn gen_named_field_reads(type_name: &str, fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "            {}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "            {0}: match {source}.get(\"{0}\") {{\n                Some(v) => ::serde::Deserialize::from_content(v)?,\n                None => return Err(::serde::DeError::custom(\"missing field `{0}` in {type_name}\")),\n            }},\n",
                f.name
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "        if c.as_map().is_none() {{ return Err(::serde::DeError::custom(format!(\"expected map for {name}, got {{}}\", c.kind()))); }}\n"
                    ));
                    out.push_str(&format!("        Ok({name} {{\n"));
                    out.push_str(&gen_named_field_reads(name, fs, "c"));
                    out.push_str("        })\n");
                }
                Fields::Tuple(1) => {
                    out.push_str(&format!(
                        "        Ok({name}(::serde::Deserialize::from_content(c)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let seq = c.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n        if seq.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n"
                    ));
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                        .collect();
                    out.push_str(&format!("        Ok({name}({}))\n", items.join(", ")));
                }
                Fields::Unit => {
                    out.push_str(&format!("        Ok({name})\n"));
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("        if let ::serde::Content::Str(s) = c {\n            return match s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!(
                        "                \"{0}\" => Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "                other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n            }};\n        }}\n"
            ));
            // Data variants arrive as single-entry maps.
            out.push_str(&format!(
                "        let m = c.as_map().ok_or_else(|| ::serde::DeError::custom(format!(\"expected variant of {name}, got {{}}\", c.kind())))?;\n        if m.len() != 1 {{ return Err(::serde::DeError::custom(\"expected single-entry variant map for {name}\")); }}\n        let (tag, inner) = &m[0];\n        match tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            \"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "            \"{vn}\" => {{\n                let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?;\n                if seq.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n                Ok({name}::{vn}({}))\n            }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "            \"{vn}\" => {{\n                if inner.as_map().is_none() {{ return Err(::serde::DeError::custom(\"expected map for {name}::{vn}\")); }}\n                Ok({name}::{vn} {{\n"
                        ));
                        for line in gen_named_field_reads(name, fs, "inner").lines() {
                            out.push_str("        ");
                            out.push_str(line);
                            out.push('\n');
                        }
                        out.push_str("                })\n            }\n");
                    }
                }
            }
            out.push_str(&format!(
                "            other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
