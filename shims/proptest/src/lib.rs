//! Offline shim for `proptest` (the subset this workspace uses).
//!
//! Provides the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, `any::<T>()`, [`Just`], integer-range and string-pattern
//! strategies, `collection::vec`, `option::of`, `sample::select`,
//! `sample::Index`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! case), string patterns support only concatenations of literal characters
//! and `[class]{m,n}` character classes, and case counts default to 64
//! (override with `PROPTEST_CASES`). Generation is deterministic per test
//! name.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based deterministic test RNG.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Deterministic per-test seed derived from the test name (FNV-1a),
    /// optionally overridden by `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::new(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Sentinel error used by `prop_assume!` to skip a case.
pub const ASSUME_REJECTED: &str = "__proptest_assume_rejected__";

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erased, cloneable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }

    /// Builds recursive values: each level is a 50/50 union of the leaf
    /// strategy and `recurse` applied to the previous level, `depth` levels
    /// deep. (`desired_size` / `expected_branch_size` are accepted for
    /// API compatibility; sizing is controlled by the inner collections.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between strategies of a common value type.
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly random bit patterns (spanning the full representable range,
        // including NaN/±inf), with special values mixed in so edge cases
        // like -0.0 appear often enough to matter.
        const SPECIAL: [f64; 8] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        if rng.below(8) == 0 {
            SPECIAL[rng.below(SPECIAL.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            loop {
                if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                    return c;
                }
            }
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Built-in strategies: integer ranges and string patterns
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` regex-like patterns: concatenations of literal characters and
/// `[class]` atoms, each optionally repeated `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1; // closing ']'
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition min"),
                    n.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let count = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..count {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// collection / option / sample modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_bool() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or a value from `inner`, 50/50.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select on empty list");
        Select(options)
    }

    /// An index into a collection whose length is only known at use time;
    /// `index(len)` maps it uniformly into `0..len`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            let mut ran = 0usize;
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECTED => {}
                    ::std::result::Result::Err(e) => {
                        panic!("property {} failed on case {case}: {e}", stringify!($name));
                    }
                }
            }
            assert!(
                ran > 0,
                "property {}: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
    )+};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}; {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right,
                        ::std::format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The conventional import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_respects_shape() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::generate_from_pattern("[A-Z][a-z0-9 ]{2,5}x", &mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!((4..=7).contains(&chars.len()), "{s:?}");
            assert!(chars[0].is_ascii_uppercase());
            assert_eq!(*chars.last().unwrap(), 'x');
            for &c in &chars[1..chars.len() - 1] {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' ',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn range_and_vec_strategies_respect_bounds() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let v = crate::collection::vec(0i64..5, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn union_and_recursive_generate_both_arms() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strategy = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::new(3);
        let mut saw_leaf = false;
        let mut saw_node = false;
        for _ in 0..100 {
            match strategy.generate(&mut rng) {
                Tree::Leaf(_) => saw_leaf = true,
                Tree::Node(_) => saw_node = true,
            }
        }
        assert!(saw_leaf && saw_node);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("some_property");
        let mut b = crate::TestRng::for_test("some_property");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn shim_macro_works(x in 0usize..10, s in "[ab]{1,3}") {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
