//! Offline shim for `serde_json` (the subset this workspace uses):
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`], [`Result`].
//!
//! Serialization renders the [`serde::Content`] tree produced by the serde
//! shim. Floats are formatted with Rust's `{:?}` formatter, which emits the
//! shortest string that round-trips exactly (and preserves `-0.0`), matching
//! the real crate's `float_roundtrip` behavior closely enough for this
//! workspace's bitwise round-trip property tests. Non-finite floats serialize
//! as `null`, as in the real crate.

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias, mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that parses back exactly,
        // and renders -0.0 as "-0.0".
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Float(f) => write_float(out, *f),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_content());
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Content::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Content::UInt(u))
        } else {
            // Integer wider than u64: fall back to float, as serde_json's
            // arbitrary_precision feature is off.
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_content(&content).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_bitwise() {
        for f in [0.1f64, 1.0 / 3.0, -0.0, 1e300, 5e-324, 1.5] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "failed for {f:?} -> {json}");
        }
    }

    #[test]
    fn negative_zero_keeps_sign() {
        assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
        let back: f64 = from_str("-0.0").unwrap();
        assert!(back.is_sign_negative());
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1F600}\u{7}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escape_parses() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = vec![vec![1i64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<i64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("key".to_string(), vec![1i64]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"key\": [\n    1\n  ]\n"));
        let back: std::collections::BTreeMap<String, Vec<i64>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<i64>("12,").is_err());
        assert!(from_str::<Vec<i64>>("[1 2]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
