//! Offline shim for `criterion` (the subset this workspace uses).
//!
//! Implements `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input` (accepting both `&str` and [`BenchmarkId`] names),
//! `Bencher::iter`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is simpler than the real crate: each sample times a batch of
//! iterations sized to roughly `CRITERION_SAMPLE_MS` milliseconds (default
//! 10), and the per-iteration median over `sample_size` samples is printed to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkName {
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.0
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into_name());
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.into_name());
        self
    }

    pub fn finish(&mut self) {}
}

/// Per-iteration timing summary of one benchmark.
struct Sampled {
    median: Duration,
    min: Duration,
    iterations: u64,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

fn target_sample_time() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10u64);
    Duration::from_millis(ms)
}

impl Bencher {
    /// Times `routine`, storing a per-iteration summary.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + batch sizing: time one call, then size batches to roughly
        // the target sample duration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = target_sample_time();
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.result = Some(Sampled {
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            iterations: batch * self.sample_size as u64,
        });
    }

    fn report(&self, group: &str, name: &str) {
        match &self.result {
            Some(s) => println!(
                "bench {group}/{name}: median {} min {} ({} iterations)",
                format_duration(s.median),
                format_duration(s.min),
                s.iterations
            ),
            None => println!("bench {group}/{name}: no measurement recorded"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
