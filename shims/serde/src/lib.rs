//! Offline shim for the `serde` crate (the subset this workspace uses).
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned JSON-like [`Content`] tree: `Serialize` renders a value into a
//! `Content`, `Deserialize` rebuilds a value from one. `serde_json` (the
//! sibling shim) converts `Content` to and from JSON text. The derive macros
//! are re-exported from the `serde_derive` shim and target these traits.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped data tree — the interchange format between the
/// `Serialize`/`Deserialize` traits and text formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the content's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) => "integer",
            Content::UInt(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuilds `Self` from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: i128 = match c {
                    Content::Int(i) => *i as i128,
                    Content::UInt(u) => *u as i128,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide: i128 = match c {
                    Content::Int(i) => *i as i128,
                    Content::UInt(u) => *u as i128,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Float(f) => Ok(*f),
            Content::Int(i) => Ok(*i as f64),
            Content::UInt(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!(
                "expected float, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected sequence for tuple"))?;
                let mut it = seq.iter();
                Ok(($(
                    {
                        let _ = $n; // positional marker
                        $t::from_content(
                            it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}
impl_serde_tuple!((0 A, 1 B)(0 A, 1 B, 2 C));

/// Map keys must serialize to a string (JSON object keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_content() {
        Content::Str(s) => s,
        other => panic!("map keys must serialize to strings, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    K::from_content(&Content::Str(key.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {}", c.kind())))?;
        map.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {}", c.kind())))?;
        map.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {}", c.kind())))?;
        seq.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(|c| format!("{c:?}"));
        Content::Seq(items)
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {}", c.kind())))?;
        seq.iter().map(T::from_content).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()), Ok(42));
        assert_eq!(u32::from_content(&7u32.to_content()), Ok(7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&String::from("hi").to_content()),
            Ok(String::from("hi"))
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
    }

    #[test]
    fn integer_widening_to_float() {
        assert_eq!(f64::from_content(&Content::Int(10)), Ok(10.0));
    }

    #[test]
    fn option_none_is_null() {
        let none: Option<i64> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<i64>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<i64>::from_content(&Content::Int(3)), Ok(Some(3)));
    }

    #[test]
    fn vec_and_map_round_trip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::from_content(&v.to_content()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_content(&m.to_content()),
            Ok(m)
        );
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(u32::from_content(&Content::Int(-1)).is_err());
    }

    #[test]
    fn shape_mismatch_reports_kinds() {
        let err = bool::from_content(&Content::Str("x".into())).unwrap_err();
        assert!(err.0.contains("expected bool"));
    }
}
