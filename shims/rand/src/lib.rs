//! Offline shim for the `rand` crate (the subset this workspace uses).
//!
//! Provides a deterministic [`StdRng`] built on xoshiro256++ (seeded through
//! SplitMix64), the [`SeedableRng`] seeding entry point, and the [`Rng`]
//! extension trait with `gen` / `gen_range` over integer and float ranges.
//!
//! The stream differs from the real crate's ChaCha-based `StdRng`; everything
//! in this workspace treats seeds as opaque determinism handles, not as
//! references to the real rand stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Standard-rng namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::from_seed_u64(seed))
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
        // Uniform in [0, 1) with 53 bits of precision.
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable within a range.
///
/// The blanket `SampleRange` impls below are generic over this trait (as in
/// the real crate), which is what lets integer literals in
/// `rng.gen_range(0..9)` unify with usage-site type requirements instead of
/// falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self;
    fn sample_inclusive(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                start + (end - start) * unit as $t
            }
            fn sample_inclusive(start: Self, end: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        T::sample_inclusive(start, end, rng)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample_standard(&mut f)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample_from(&mut f)
    }

    /// A random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&x));
            let f: f64 = rng.gen_range(0.5..1.0);
            assert!((0.5..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
