//! `dexctl` — command-line explorer for the data-examples system.
//!
//! ```text
//! dexctl list [category]        list modules (optionally one category)
//! dexctl show <module-id>       interface + generated data examples
//! dexctl search [--consumes C] [--produces C] [--name N]
//! dexctl compare <a> <b>        behavior comparison verdict
//! dexctl suggest <module-id>    data-example-guided downstream suggestions
//! dexctl partitions <concept>   ontology partitions of a concept
//! dexctl ontology               print the annotation ontology
//! ```
//!
//! Everything runs against the built-in synthetic universe with fixed
//! seeds, so output is reproducible.

use data_examples::core::{
    compare_modules, generate_examples, suggest_downstream, GenerationConfig,
};
use data_examples::ontology::mygrid;
use data_examples::pool::build_synthetic_pool;
use data_examples::universe::{Category, Universe};
use std::process::ExitCode;

/// Writes a line to stdout, exiting quietly when the reader has gone away
/// (`dexctl … | head` closes the pipe early; that is not an error).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let mut stdout = std::io::stdout();
        if writeln!(stdout, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let universe = data_examples::universe::build();
    match command.as_str() {
        "list" => list(&universe, args.get(1).map(String::as_str)),
        "show" => with_arg(&args, 1, "module id", |id| show(&universe, id)),
        "search" => search(&universe, &args[1..]),
        "compare" => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: dexctl compare <module-a> <module-b>");
                return ExitCode::FAILURE;
            };
            compare(&universe, a, b)
        }
        "suggest" => with_arg(&args, 1, "module id", |id| suggest(&universe, id)),
        "partitions" => with_arg(&args, 1, "concept name", |c| partitions(&universe, c)),
        "ontology" => {
            out!("{}", mygrid::MYGRID_TEXT.trim_end());
            ExitCode::SUCCESS
        }
        "help" | "--help" | "-h" => {
            out!("{}", USAGE.trim_end());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dexctl — explore scientific modules through data examples

usage:
  dexctl list [category]        categories: ft, dr, mi, filter, da
  dexctl show <module-id>       interface + generated data examples
  dexctl search [--consumes C] [--produces C] [--name N]
  dexctl compare <a> <b>        behavior comparison verdict
  dexctl suggest <module-id>    downstream composition suggestions
  dexctl partitions <concept>   ontology partitions of a concept
  dexctl ontology               print the annotation ontology
";

fn with_arg(
    args: &[String],
    idx: usize,
    what: &str,
    run: impl FnOnce(&str) -> ExitCode,
) -> ExitCode {
    match args.get(idx) {
        Some(value) => run(value),
        None => {
            eprintln!("missing {what}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_category(tag: &str) -> Option<Category> {
    match tag {
        "ft" | "format" => Some(Category::FormatTransformation),
        "dr" | "retrieval" => Some(Category::DataRetrieval),
        "mi" | "mapping" => Some(Category::MappingIdentifiers),
        "filter" | "filtering" => Some(Category::Filtering),
        "da" | "analysis" => Some(Category::DataAnalysis),
        _ => None,
    }
}

fn list(universe: &Universe, category: Option<&str>) -> ExitCode {
    let filter = match category {
        Some(tag) => match parse_category(tag) {
            Some(c) => Some(c),
            None => {
                eprintln!("unknown category `{tag}` (use ft, dr, mi, filter, da)");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    for (id, cat) in &universe.categories {
        if filter.is_some_and(|f| f != *cat) {
            continue;
        }
        let d = universe.catalog.descriptor(id).expect("registered");
        out!("{id:<36} [{cat}] {}", d.signature());
    }
    ExitCode::SUCCESS
}

fn show(universe: &Universe, id: &str) -> ExitCode {
    let module_id = id.into();
    let Some(descriptor) = universe.catalog.descriptor(&module_id) else {
        eprintln!("unknown module `{id}`");
        return ExitCode::FAILURE;
    };
    out!("id:        {}", descriptor.id);
    out!("name:      {}", descriptor.name);
    out!("kind:      {}", descriptor.kind);
    if let Some(category) = universe.categories.get(&module_id) {
        out!("category:  {category}");
    }
    out!("signature: {}", descriptor.signature());
    if !universe.catalog.is_available(&module_id) {
        out!("status:    WITHDRAWN by its provider");
        return ExitCode::SUCCESS;
    }
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let module = universe.catalog.get(&module_id).expect("available");
    match generate_examples(
        module.as_ref(),
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    ) {
        Ok(report) => {
            out!("\ndata examples ({}):", report.examples.len());
            for example in report.examples.iter() {
                out!("  {example}");
            }
        }
        Err(e) => out!("\nexample generation failed: {e}"),
    }
    ExitCode::SUCCESS
}

fn search(universe: &Universe, flags: &[String]) -> ExitCode {
    let mut consumes = None;
    let mut produces = None;
    let mut name = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let target = match flag.as_str() {
            "--consumes" => &mut consumes,
            "--produces" => &mut produces,
            "--name" => &mut name,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        };
        match it.next() {
            Some(value) => *target = Some(value.clone()),
            None => {
                eprintln!("flag `{flag}` needs a value");
                return ExitCode::FAILURE;
            }
        }
    }
    let ontology = &universe.ontology;
    let subsumed = |param: &str, filter: &str| match (ontology.id(filter), ontology.id(param)) {
        (Some(f), Some(p)) => ontology.subsumes(f, p),
        _ => false,
    };
    let mut hits = 0;
    for id in universe.catalog.available_ids() {
        let d = universe.catalog.descriptor(&id).expect("registered");
        if let Some(n) = &name {
            if !d.name.to_lowercase().contains(&n.to_lowercase()) {
                continue;
            }
        }
        if let Some(c) = &consumes {
            if !d.inputs.iter().any(|p| subsumed(&p.semantic, c)) {
                continue;
            }
        }
        if let Some(c) = &produces {
            if !d.outputs.iter().any(|p| subsumed(&p.semantic, c)) {
                continue;
            }
        }
        out!("{id:<36} {}", d.signature());
        hits += 1;
    }
    out!("\n{hits} modules");
    ExitCode::SUCCESS
}

fn compare(universe: &Universe, a: &str, b: &str) -> ExitCode {
    let (Some(ma), Some(mb)) = (
        universe.catalog.get(&a.into()),
        universe.catalog.get(&b.into()),
    ) else {
        eprintln!("both modules must exist and be available");
        return ExitCode::FAILURE;
    };
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    match compare_modules(
        ma.as_ref(),
        mb.as_ref(),
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    ) {
        Ok(verdict) => {
            out!("{a} vs {b}: {verdict}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot compare: {e}");
            ExitCode::FAILURE
        }
    }
}

fn suggest(universe: &Universe, id: &str) -> ExitCode {
    let module_id = id.into();
    let Some(module) = universe.catalog.get(&module_id) else {
        eprintln!("unknown or withdrawn module `{id}`");
        return ExitCode::FAILURE;
    };
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let report = match generate_examples(
        module.as_ref(),
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("example generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let suggestions = suggest_downstream(
        module.as_ref(),
        &report.examples,
        &universe.catalog,
        &universe.ontology,
    );
    out!("downstream suggestions for {id} (by empirical acceptance):");
    for s in suggestions.iter().take(15) {
        out!(
            "  {:<36} {:>3.0}%  (output {} -> input {})",
            s.module,
            s.score.ratio() * 100.0,
            s.score.upstream_output,
            s.score.downstream_input
        );
    }
    ExitCode::SUCCESS
}

fn partitions(universe: &Universe, concept: &str) -> ExitCode {
    let ontology = &universe.ontology;
    let Some(id) = ontology.id(concept) else {
        eprintln!("unknown concept `{concept}`");
        return ExitCode::FAILURE;
    };
    out!("partitions of the domain of `{concept}`:");
    for p in ontology.partitions_of(id) {
        out!("  {}", ontology.concept_name(p));
    }
    ExitCode::SUCCESS
}
