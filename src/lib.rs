//! # data-examples
//!
//! Facade crate for the reproduction of *"Annotating the Behavior of
//! Scientific Modules Using Data Examples: A Practical Approach"*
//! (K. Belhajjame, EDBT 2014).
//!
//! Re-exports every sub-crate under a stable namespace so applications and
//! the root `examples/` can depend on a single crate:
//!
//! ```
//! use data_examples::ontology::mygrid;
//! let onto = mygrid::ontology();
//! assert!(onto.len() > 50);
//! ```

pub use dex_core as core;
pub use dex_modules as modules;
pub use dex_ontology as ontology;
pub use dex_pool as pool;
pub use dex_provenance as provenance;
pub use dex_registry as registry;
pub use dex_repair as repair;
pub use dex_study as study;
pub use dex_universe as universe;
pub use dex_values as values;
pub use dex_workflow as workflow;
