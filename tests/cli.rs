//! Integration tests for the `dexctl` binary.

use std::process::Command;

fn dexctl(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_dexctl"))
        .args(args)
        .output()
        .expect("dexctl runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (stdout, _, ok) = dexctl(&["help"]);
    assert!(ok);
    for command in ["list", "show", "search", "compare", "suggest", "partitions"] {
        assert!(stdout.contains(command), "missing {command}");
    }
}

#[test]
fn no_args_fails_with_usage() {
    let (_, stderr, ok) = dexctl(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn list_filters_by_category() {
    let (stdout, _, ok) = dexctl(&["list", "filter"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 27, "filtering category size");
    assert!(stdout.contains("fl:"));
    let (_, stderr, ok) = dexctl(&["list", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown category"));
}

#[test]
fn show_prints_interface_and_examples() {
    let (stdout, _, ok) = dexctl(&["show", "dr:get_uniprot_record"]);
    assert!(ok);
    assert!(stdout.contains("UniprotAccession"));
    assert!(stdout.contains("data examples (1)"));
    let (_, stderr, ok) = dexctl(&["show", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown module"));
}

#[test]
fn compare_prints_verdict() {
    let (stdout, _, ok) = dexctl(&[
        "compare",
        "dr:get_uniprot_record",
        "dr:get_uniprot_record_ebi",
    ]);
    assert!(ok);
    assert!(stdout.contains("equivalent"));
}

#[test]
fn partitions_prints_subdomains() {
    let (stdout, _, ok) = dexctl(&["partitions", "BiologicalSequence"]);
    assert!(ok);
    assert!(stdout.contains("DNASequence"));
    assert!(stdout.contains("ProteinSequence"));
    let (_, stderr, ok) = dexctl(&["partitions", "Nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown concept"));
}

#[test]
fn search_combines_filters() {
    let (stdout, _, ok) = dexctl(&[
        "search",
        "--consumes",
        "UniprotAccession",
        "--produces",
        "ProteinSequence",
    ]);
    assert!(ok);
    assert!(stdout.contains("get_protein_sequence"));
}
