//! Cross-crate integration tests: the full annotate → understand → match →
//! repair pipeline through the public facade.

use data_examples::core::matching::MappingMode;
use data_examples::core::{
    compare_modules, generate_examples, match_against_examples, GenerationConfig, MatchVerdict,
};
use data_examples::pool::build_synthetic_pool;
use data_examples::provenance::{harvest_pool, reconstruct_examples};
use data_examples::registry::{annotate_catalog, SearchQuery};
use data_examples::repair::{
    build_corpus, generate_repository, repair_repository, run_matching_study, RepositoryPlan,
};
use data_examples::universe::SpecOracle;
use data_examples::values::classify::classify_concept;

#[test]
fn figure2_get_record_example_reads_like_the_paper() {
    // The paper's Figure 2: one data example fully conveys GetRecord's
    // behavior — accession in, the corresponding record out.
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 3, 1);
    let module = universe
        .catalog
        .get(&"dr:get_uniprot_record".into())
        .unwrap();
    let report = generate_examples(
        module.as_ref(),
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .unwrap();
    assert_eq!(report.examples.len(), 1);
    let example = &report.examples.examples[0];
    let accession = example.inputs[0].value.as_text().unwrap();
    let record = example.outputs[0].value.as_text().unwrap();
    assert!(record.contains(accession), "record echoes the accession");
}

#[test]
fn generation_never_reads_the_oracle_but_scores_against_it() {
    // Evaluation-only use of specs: the same report scores identically no
    // matter how often it is generated, and the score is derived purely
    // from invocation results.
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 3);
    let id = "da:analyze_record_v0".into();
    let module = universe.catalog.get(&id).unwrap();
    let report = generate_examples(
        module.as_ref(),
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .unwrap();
    let oracle = SpecOracle::new(&universe.specs[&id]);
    let s = data_examples::core::metrics::score(&report.examples, &oracle);
    // Planted shape: completeness 3/4, conciseness 3/6.
    assert!((s.completeness - 0.75).abs() < 1e-9);
    assert!((s.conciseness - 0.5).abs() < 1e-9);
}

#[test]
fn provenance_harvested_pool_supports_generation() {
    // §4.1 end-to-end: enact workflows, harvest the pool from the traces,
    // then use THAT pool (not the synthetic one) to generate data examples.
    let universe = data_examples::universe::build();
    let synthetic = build_synthetic_pool(&universe.ontology, 8, 5);
    let repo = generate_repository(&universe, &synthetic, &RepositoryPlan::small(2));
    let corpus = build_corpus(&universe, &repo, &synthetic);
    let harvested = harvest_pool(&corpus, &universe.catalog, classify_concept);
    assert!(harvested.len() > 100, "harvest yielded {}", harvested.len());

    let module = universe.catalog.get(&"mi:map_uniprot_go".into()).unwrap();
    let report = generate_examples(
        module.as_ref(),
        &universe.ontology,
        &harvested,
        &GenerationConfig::default(),
    )
    .unwrap();
    assert_eq!(report.examples.len(), 1);
    assert!(report.unvalued_partitions.is_empty());
}

#[test]
fn equivalence_is_symmetric_for_identical_backends() {
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 11);
    let config = GenerationConfig::default();
    let a = universe
        .catalog
        .get(&"dr:get_uniprot_record".into())
        .unwrap();
    let b = universe
        .catalog
        .get(&"dr:get_uniprot_record_ebi".into())
        .unwrap();
    let ab = compare_modules(a.as_ref(), b.as_ref(), &universe.ontology, &pool, &config).unwrap();
    let ba = compare_modules(b.as_ref(), a.as_ref(), &universe.ontology, &pool, &config).unwrap();
    assert!(matches!(ab, MatchVerdict::Equivalent { .. }));
    assert!(matches!(ba, MatchVerdict::Equivalent { .. }));
}

#[test]
fn different_algorithms_are_not_substitutes() {
    // §6 Example 4: homology modules from different providers use different
    // alignment algorithms and therefore deliver different results.
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 11);
    let config = GenerationConfig::default();
    // ddbj runs `fasta`, ncbi runs `ssearch`: same interface, different
    // algorithm, different hits.
    let ddbj = universe.catalog.get(&"da:blast_pdb_ddbj".into()).unwrap();
    let ncbi = universe.catalog.get(&"da:blast_pdb_ncbi".into()).unwrap();
    let report = generate_examples(ddbj.as_ref(), &universe.ontology, &pool, &config).unwrap();
    let verdict = match_against_examples(
        ddbj.descriptor(),
        &report.examples,
        ncbi.as_ref(),
        &universe.ontology,
        MappingMode::Strict,
    )
    .unwrap();
    assert!(
        matches!(verdict, MatchVerdict::Disjoint { .. }),
        "{verdict}"
    );
}

#[test]
fn full_decay_pipeline_small_scale() {
    // Repository → corpus → decay → Figure 8 → repair, on a small plan.
    let mut universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 40, 77);
    let plan = RepositoryPlan::small(21);
    let repo = generate_repository(&universe, &pool, &plan);
    let corpus = build_corpus(&universe, &repo, &pool);
    universe.decay();

    let study = run_matching_study(&universe.catalog, &corpus, &universe.ontology);
    assert_eq!(study.counts(), (16, 23, 33));

    let (outcomes, summary) = repair_repository(
        &repo,
        &universe.catalog,
        &study,
        &corpus,
        &universe.ontology,
    );
    assert_eq!(outcomes.len(), plan.total());
    assert_eq!(summary.healthy, plan.healthy);
    assert_eq!(
        summary.repaired(),
        plan.equivalent_full + plan.equivalent_partial + plan.overlap_full + plan.overlap_partial
    );
}

#[test]
fn reconstructed_examples_match_registry_annotations() {
    // The §6 trick: a module's reconstructed examples equal what replaying
    // the module would produce — for a still-available module we can check
    // this directly.
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 8, 5);
    let repo = generate_repository(&universe, &pool, &RepositoryPlan::small(4));
    let corpus = build_corpus(&universe, &repo, &pool);
    let id = universe.legacy[0].clone();
    let descriptor = universe.catalog.descriptor(&id).unwrap().clone();
    let examples = reconstruct_examples(&corpus, &id, &descriptor);
    assert!(!examples.is_empty());
    for example in examples.iter() {
        let inputs: Vec<_> = example.inputs.iter().map(|b| b.value.clone()).collect();
        let outputs = universe.catalog.invoke(&id, &inputs).unwrap();
        let recorded: Vec<_> = example.outputs.iter().map(|b| b.value.clone()).collect();
        assert_eq!(outputs, recorded);
    }
}

#[test]
fn registry_round_trips_annotations_through_json() {
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 3, 2);
    let (registry, failures) = annotate_catalog(
        &universe.catalog,
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    );
    assert!(failures.is_empty());
    let json = registry.to_json().unwrap();
    let back = data_examples::registry::ModuleRegistry::from_json(&json).unwrap();
    assert_eq!(back.len(), registry.len());

    // Search still works after the round trip.
    let hits = data_examples::registry::search::search(
        &back,
        &SearchQuery::any().consuming("PeptideMassList"),
        &universe.ontology,
    );
    assert!(!hits.is_empty());
}
