//! The library is domain-agnostic: everything the pipeline needs — an
//! ontology, a pool, black-box modules — can come from a user-supplied
//! domain. This test builds a small *biodiversity* domain (the paper's
//! intro names bioinformatics, biodiversity and astronomy as consumers)
//! and runs the full annotate → score → match pipeline on it.

use data_examples::core::matching::MappingMode;
use data_examples::core::{
    compare_modules, generate_examples, match_against_examples, BehaviorOracle, DataExample,
    GenerationConfig, MatchVerdict,
};
use data_examples::modules::{
    BlackBox, FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter,
};
use data_examples::ontology::{text, Ontology};
use data_examples::pool::{AnnotatedInstance, InstancePool};
use data_examples::values::{StructuralType, Value};

const BIODIVERSITY: &str = "\
ontology biodiversity
Occurrence
  SpecimenRecord
  ObservationRecord
TaxonName
  ScientificName
  VernacularName
Locality
";

fn ontology() -> Ontology {
    text::parse(BIODIVERSITY).unwrap()
}

fn pool() -> InstancePool {
    let mut pool = InstancePool::new("biodiversity");
    let add = |pool: &mut InstancePool, value: &str, concept: &str| {
        pool.add(AnnotatedInstance::synthetic(Value::text(value), concept));
    };
    add(&mut pool, "occ:0001|generic", "Occurrence");
    add(&mut pool, "spec:PARIS-074411", "SpecimenRecord");
    add(&mut pool, "obs:GBIF-99121", "ObservationRecord");
    add(&mut pool, "name:any", "TaxonName");
    add(&mut pool, "Parus major", "ScientificName");
    add(&mut pool, "great tit", "VernacularName");
    add(&mut pool, "48.85N 2.35E", "Locality");
    pool
}

/// A name resolver: scientific names resolve verbatim; vernacular names go
/// through a lookup (uppercased marker); generic names are echoed.
fn resolver(id: &str, vernacular_salt: &str) -> FnModule {
    let salt = vernacular_salt.to_string();
    FnModule::new(
        ModuleDescriptor::new(
            id,
            id,
            ModuleKind::RestService,
            vec![Parameter::required(
                "name",
                StructuralType::Text,
                "TaxonName",
            )],
            vec![Parameter::required(
                "resolved",
                StructuralType::Text,
                "ScientificName",
            )],
        ),
        move |inputs| {
            let name = inputs[0].as_text().unwrap();
            if let Some(rest) = name.strip_prefix("name:") {
                Ok(vec![Value::text(format!("Unknownia {rest}"))])
            } else if name.chars().next().is_some_and(char::is_uppercase) {
                Ok(vec![Value::text(name.to_string())])
            } else {
                Ok(vec![Value::text(format!(
                    "resolved-{salt}-{}",
                    name.replace(' ', "_")
                ))])
            }
        },
    )
}

struct ResolverOracle;

impl BehaviorOracle for ResolverOracle {
    fn class_count(&self) -> usize {
        3
    }
    fn class_of(&self, example: &DataExample) -> Option<usize> {
        let name = example.inputs[0].value.as_text()?;
        Some(if name.starts_with("name:") {
            0 // synthesize placeholder
        } else if name.chars().next()?.is_uppercase() {
            1 // already scientific
        } else {
            2 // vernacular lookup
        })
    }
}

#[test]
fn pipeline_runs_on_a_custom_domain() {
    let onto = ontology();
    let pool = pool();
    let module = resolver("resolve_name", "gbif");
    let report = generate_examples(&module, &onto, &pool, &GenerationConfig::default()).unwrap();
    // TaxonName partitions: itself + ScientificName + VernacularName.
    assert_eq!(report.examples.len(), 3);
    assert_eq!(report.input_partition_coverage(&onto), 1.0);

    let score = data_examples::core::metrics::score(&report.examples, &ResolverOracle);
    assert_eq!(score.completeness, 1.0);
    assert_eq!(score.conciseness, 1.0);
}

#[test]
fn matching_works_on_a_custom_domain() {
    let onto = ontology();
    let pool = pool();
    let a = resolver("resolve_a", "gbif");
    let same = resolver("resolve_b", "gbif");
    let different = resolver("resolve_c", "col");

    let config = GenerationConfig::default();
    let v = compare_modules(&a, &same, &onto, &pool, &config).unwrap();
    assert_eq!(v, MatchVerdict::Equivalent { compared: 3 });

    // The `col` resolver differs only on vernacular names: overlapping.
    let v = compare_modules(&a, &different, &onto, &pool, &config).unwrap();
    assert_eq!(
        v,
        MatchVerdict::Overlapping {
            agreeing: 2,
            compared: 3
        }
    );
}

#[test]
fn subsuming_substitution_works_on_a_custom_domain() {
    // A resolver accepting only scientific names is replaceable by the
    // broad TaxonName resolver, not vice versa.
    let onto = ontology();
    let pool = pool();
    let narrow = FnModule::new(
        ModuleDescriptor::new(
            "narrow",
            "narrow",
            ModuleKind::SoapService,
            vec![Parameter::required(
                "name",
                StructuralType::Text,
                "ScientificName",
            )],
            vec![Parameter::required(
                "resolved",
                StructuralType::Text,
                "ScientificName",
            )],
        ),
        |inputs| {
            let name = inputs[0].as_text().unwrap();
            if name.chars().next().is_some_and(char::is_uppercase) {
                Ok(vec![Value::text(name.to_string())])
            } else {
                Err(InvocationError::rejected("not a scientific name"))
            }
        },
    );
    let broad = resolver("broad", "gbif");
    let report = generate_examples(&narrow, &onto, &pool, &GenerationConfig::default()).unwrap();
    let verdict = match_against_examples(
        narrow.descriptor(),
        &report.examples,
        &broad,
        &onto,
        MappingMode::Subsuming,
    )
    .unwrap();
    assert_eq!(verdict, MatchVerdict::Equivalent { compared: 1 });
}
