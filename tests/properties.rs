//! Property-based tests over the core data structures and invariants.

use data_examples::core::{generate_examples, GenerationConfig};
use data_examples::ontology::{mygrid, Ontology};
use data_examples::pool::build_synthetic_pool;
use data_examples::values::formats::accession::AccessionKind;
use data_examples::values::formats::records::{RecordFormat, SeqEntry};
use data_examples::values::formats::sequence::{
    classify, reverse_complement, transcribe, SequenceKind,
};
use data_examples::values::Value;
use proptest::prelude::*;

fn arb_dna() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..200)
        .prop_map(|v| v.into_iter().collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    // JSON has no NaN/±inf, so restrict floats to finite values for the
    // serde round trip (bitwise Value equality still exercises -0.0 etc.).
    let finite = any::<f64>().prop_filter("finite floats only", |f| f.is_finite());
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        finite.prop_map(Value::Float),
        any::<bool>().prop_map(Value::Boolean),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::text),
    ];
    leaf.prop_recursive(2, 16, 5, |inner| {
        proptest::collection::vec(inner, 0..5).prop_map(Value::List)
    })
}

proptest! {
    /// Reverse complement is an involution on DNA.
    #[test]
    fn revcomp_involution(dna in arb_dna()) {
        prop_assert_eq!(reverse_complement(&reverse_complement(&dna)), dna);
    }

    /// Transcription preserves length and produces RNA-compatible residues.
    #[test]
    fn transcription_is_rna(dna in arb_dna()) {
        let rna = transcribe(&dna);
        prop_assert_eq!(rna.len(), dna.len());
        let kind = classify(&rna);
        prop_assert!(matches!(kind, Some(SequenceKind::Rna | SequenceKind::Dna)), "{:?}", kind);
    }

    /// Value equality implies hash equality (HashMap/HashSet soundness).
    #[test]
    fn value_eq_implies_hash_eq(v in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let w = v.clone();
        prop_assert_eq!(&v, &w);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        v.hash(&mut ha);
        w.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    /// Values survive a serde round trip.
    #[test]
    fn value_serde_round_trip(v in arb_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// Every generated accession validates and is detected as a kind that
    /// accepts it.
    #[test]
    fn accession_generate_validate(seed in any::<u64>(), kind_idx in 0usize..15) {
        use rand::{rngs::StdRng, SeedableRng};
        let kind = AccessionKind::ALL[kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let acc = kind.generate(&mut rng);
        prop_assert!(kind.is_valid(&acc), "{} rejected {}", kind, acc);
        let detected = AccessionKind::detect(&acc).unwrap();
        prop_assert!(detected.is_valid(&acc));
    }

    /// Record render/parse is lossless for core fields, for any entry data.
    #[test]
    fn record_round_trip(
        acc in "[A-Z][A-Z0-9]{3,7}",
        desc in "[a-z][a-z ]{0,30}",
        org in "[A-Z][a-z]{2,12}",
        seq in "[ACDEFGHIKLMNPQRSTVWY]{10,80}",
        fmt_idx in 0usize..5,
    ) {
        let entry = SeqEntry { accession: acc, description: desc.trim().to_string(), organism: org, sequence: seq };
        let format = RecordFormat::ALL[fmt_idx];
        let parsed = format.parse(&format.render(&entry)).unwrap();
        prop_assert_eq!(parsed.accession, entry.accession);
        prop_assert_eq!(parsed.sequence, entry.sequence);
    }
}

/// Ontology invariants checked exhaustively over the shipped ontology
/// (quantified tests rather than random ones — the domain is small).
#[test]
fn ontology_subsumption_is_a_partial_order() {
    let o: Ontology = mygrid::ontology();
    let ids: Vec<_> = o.iter().collect();
    for &a in &ids {
        assert!(o.subsumes(a, a), "reflexive");
        for &b in &ids {
            if o.subsumes(a, b) && o.subsumes(b, a) {
                assert_eq!(a, b, "antisymmetric");
            }
            for &c in &ids {
                if o.subsumes(a, b) && o.subsumes(b, c) {
                    assert!(o.subsumes(a, c), "transitive");
                }
            }
        }
    }
}

#[test]
fn partitions_are_disjoint_under_realization_semantics() {
    // Realization semantics make partitions non-overlapping by definition:
    // every concept appears in the partition list of each ancestor at most
    // once, and partition lists contain no duplicates.
    let o = mygrid::ontology();
    for c in o.iter() {
        let parts = o.partitions_of(c);
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            assert!(
                seen.insert(*p),
                "duplicate partition under {}",
                o.concept_name(c)
            );
            assert!(o.subsumes(c, *p));
            assert!(o.can_be_realized(*p));
        }
    }
}

#[test]
fn generation_examples_always_replay() {
    // Soundness of generated examples: re-invoking the module on an
    // example's inputs reproduces its outputs (modules are deterministic).
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 13);
    let config = GenerationConfig::default();
    for id in universe.available_ids().into_iter().take(40) {
        let module = universe.catalog.get(&id).unwrap();
        let report =
            generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
        for example in report.examples.iter() {
            let inputs: Vec<_> = example.inputs.iter().map(|b| b.value.clone()).collect();
            let outputs = module.invoke(&inputs).unwrap();
            let recorded: Vec<_> = example.outputs.iter().map(|b| b.value.clone()).collect();
            assert_eq!(outputs, recorded, "{id}");
        }
    }
}
