//! Property-based tests over the core data structures and invariants.

use data_examples::core::{generate_examples, GenerationConfig};
use data_examples::ontology::{mygrid, Ontology};
use data_examples::pool::build_synthetic_pool;
use data_examples::values::formats::accession::AccessionKind;
use data_examples::values::formats::records::{RecordFormat, SeqEntry};
use data_examples::values::formats::sequence::{
    classify, reverse_complement, transcribe, SequenceKind,
};
use data_examples::values::Value;
use proptest::prelude::*;

fn arb_dna() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..200)
        .prop_map(|v| v.into_iter().collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    // JSON has no NaN/±inf, so restrict floats to finite values for the
    // serde round trip (bitwise Value equality still exercises -0.0 etc.).
    let finite = any::<f64>().prop_filter("finite floats only", |f| f.is_finite());
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        finite.prop_map(Value::Float),
        any::<bool>().prop_map(Value::Boolean),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::text),
    ];
    leaf.prop_recursive(2, 16, 5, |inner| {
        proptest::collection::vec(inner, 0..5).prop_map(Value::List)
    })
}

proptest! {
    /// Reverse complement is an involution on DNA.
    #[test]
    fn revcomp_involution(dna in arb_dna()) {
        prop_assert_eq!(reverse_complement(&reverse_complement(&dna)), dna);
    }

    /// Transcription preserves length and produces RNA-compatible residues.
    #[test]
    fn transcription_is_rna(dna in arb_dna()) {
        let rna = transcribe(&dna);
        prop_assert_eq!(rna.len(), dna.len());
        let kind = classify(&rna);
        prop_assert!(matches!(kind, Some(SequenceKind::Rna | SequenceKind::Dna)), "{:?}", kind);
    }

    /// Value equality implies hash equality (HashMap/HashSet soundness).
    #[test]
    fn value_eq_implies_hash_eq(v in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let w = v.clone();
        prop_assert_eq!(&v, &w);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        v.hash(&mut ha);
        w.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    /// Values survive a serde round trip.
    #[test]
    fn value_serde_round_trip(v in arb_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// Every generated accession validates and is detected as a kind that
    /// accepts it.
    #[test]
    fn accession_generate_validate(seed in any::<u64>(), kind_idx in 0usize..15) {
        use rand::{rngs::StdRng, SeedableRng};
        let kind = AccessionKind::ALL[kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let acc = kind.generate(&mut rng);
        prop_assert!(kind.is_valid(&acc), "{} rejected {}", kind, acc);
        let detected = AccessionKind::detect(&acc).unwrap();
        prop_assert!(detected.is_valid(&acc));
    }

    /// Record render/parse is lossless for core fields, for any entry data.
    #[test]
    fn record_round_trip(
        acc in "[A-Z][A-Z0-9]{3,7}",
        desc in "[a-z][a-z ]{0,30}",
        org in "[A-Z][a-z]{2,12}",
        seq in "[ACDEFGHIKLMNPQRSTVWY]{10,80}",
        fmt_idx in 0usize..5,
    ) {
        let entry = SeqEntry { accession: acc, description: desc.trim().to_string(), organism: org, sequence: seq };
        let format = RecordFormat::ALL[fmt_idx];
        let parsed = format.parse(&format.render(&entry)).unwrap();
        prop_assert_eq!(parsed.accession, entry.accession);
        prop_assert_eq!(parsed.sequence, entry.sequence);
    }
}

// ---------------------------------------------------------------------------
// Blocked-matching equivalence suite (ISSUE 6): the fingerprint-blocked,
// batch-parallel matcher must produce a verdict matrix byte-identical to the
// exhaustive all-pairs oracle under every configuration — serial, parallel,
// cold cache, warm cache, withdrawn modules, and seeded fault injection.
// ---------------------------------------------------------------------------

mod blocked_matching {
    use data_examples::core::matching::MatchSession;
    use data_examples::core::GenerationConfig;
    use data_examples::modules::ModuleId;
    use data_examples::pool::build_synthetic_pool;
    use dex_experiments::parallel::{
        match_pairs_blocked, match_pairs_blocked_in, match_pairs_blocked_summary,
        match_pairs_exhaustive,
    };
    use dex_experiments::{BatchConfig, FaultConfig};
    use proptest::prelude::*;

    proptest! {
        /// The headline property: for randomized pools, catalog slices,
        /// thread counts, chunk sizes, and run configurations, the blocked
        /// matcher's full `n·(n−1)` report matrix equals the exhaustive
        /// oracle's exactly — same keys, same outcomes, same rendered error
        /// strings, same example counts. Each case exercises one of four
        /// configurations: blocked-serial, blocked-parallel, warm-cache
        /// (same session swept twice), or fault-injected parallel.
        #[test]
        fn blocked_matrix_is_byte_identical_to_exhaustive_oracle(
            pool_seed in 1u64..10_000,
            pool_per in 2usize..5,
            step in 16usize..45,
            offset in 0usize..7,
            threads in 2usize..9,
            chunk in 1usize..9,
            withdraw in any::<bool>(),
            mode in 0usize..4,
        ) {
            let mut universe = data_examples::universe::build();
            let ids: Vec<ModuleId> = universe
                .available_ids()
                .into_iter()
                .skip(offset)
                .step_by(step)
                .collect();
            prop_assert!(ids.len() >= 3);
            if withdraw {
                // A module withdrawn after id listing: both sides must
                // classify its pairs "unavailable" identically.
                universe.catalog.withdraw(&ids[0]);
            }
            let pool = build_synthetic_pool(&universe.ontology, pool_per, pool_seed);
            let mut config = GenerationConfig::default();
            if mode == 3 {
                // Seeded transient faults on ~1–10% of vectors, with the
                // paired retry policy that provably rides out every burst
                // (bursts are a pure key hash bounded at 2; retries allow
                // 4 attempts) — so outcomes stay order-independent.
                let fault = FaultConfig::injected(1 + (pool_seed % 10) as u32, pool_seed);
                fault.apply(&mut universe.catalog);
                config.retry = fault.retry;
            }
            let oracle = match_pairs_exhaustive(&universe, &ids, &pool, &config);
            let batch = BatchConfig {
                threads: if mode == 0 { 1 } else { threads },
                // Forced past the crossover guard so every case exercises
                // the claimed executor path, not just the serial fallback.
                serial_cutoff: 0,
                chunk,
            };
            if mode == 2 {
                // Warm cache: one session swept twice; both sweeps must
                // reproduce the oracle (the second entirely from memo).
                let session = MatchSession::new(&universe.ontology, &pool, config.clone());
                let cold = match_pairs_blocked_in(&session, &universe, &ids, &batch);
                let warm = match_pairs_blocked_in(&session, &universe, &ids, &batch);
                prop_assert_eq!(&oracle, &cold.reports);
                prop_assert_eq!(&oracle, &warm.reports);
                prop_assert_eq!(cold.stats, warm.stats);
            } else {
                let blocked = match_pairs_blocked(&universe, &ids, &pool, &config, &batch);
                prop_assert_eq!(&oracle, &blocked.reports);
                let s = blocked.stats;
                prop_assert_eq!(s.pairs_total, ids.len() * (ids.len() - 1));
                prop_assert_eq!(
                    s.pairs_compared + s.pairs_pruned + s.pairs_unavailable,
                    s.pairs_total
                );
                if withdraw {
                    prop_assert_eq!(s.pairs_unavailable, 2 * (ids.len() - 1));
                }
            }
        }

        /// The summary path counts exactly what the dense matrix holds:
        /// equivalent/overlapping/disjoint/incomparable tallies sum to the
        /// pair total and match a tally of the oracle's matrix.
        #[test]
        fn summary_tallies_match_the_oracle_matrix(
            pool_seed in 1u64..10_000,
            step in 16usize..40,
            threads in 1usize..9,
        ) {
            use data_examples::core::{MatchOutcome, MatchVerdict};
            let universe = data_examples::universe::build();
            let ids: Vec<ModuleId> =
                universe.available_ids().into_iter().step_by(step).collect();
            let pool = build_synthetic_pool(&universe.ontology, 3, pool_seed);
            let config = GenerationConfig::default();
            let oracle = match_pairs_exhaustive(&universe, &ids, &pool, &config);
            let summary = match_pairs_blocked_summary(
                &universe,
                &ids,
                &pool,
                &config,
                &BatchConfig { threads, serial_cutoff: 64, chunk: 8 },
            );
            let mut want = (0usize, 0usize, 0usize, 0usize);
            for report in oracle.values() {
                match &report.outcome {
                    MatchOutcome::Verdict(MatchVerdict::Equivalent { .. }) => want.0 += 1,
                    MatchOutcome::Verdict(MatchVerdict::Overlapping { .. }) => want.1 += 1,
                    MatchOutcome::Verdict(MatchVerdict::Disjoint { .. }) => want.2 += 1,
                    MatchOutcome::Incomparable(_) => want.3 += 1,
                }
            }
            prop_assert_eq!(summary.tallies(), want);
            prop_assert_eq!(
                summary.equivalent
                    + summary.overlapping
                    + summary.disjoint
                    + summary.incomparable,
                summary.stats.pairs_total
            );
        }
    }
}

/// Ontology invariants checked exhaustively over the shipped ontology
/// (quantified tests rather than random ones — the domain is small).
#[test]
fn ontology_subsumption_is_a_partial_order() {
    let o: Ontology = mygrid::ontology();
    let ids: Vec<_> = o.iter().collect();
    for &a in &ids {
        assert!(o.subsumes(a, a), "reflexive");
        for &b in &ids {
            if o.subsumes(a, b) && o.subsumes(b, a) {
                assert_eq!(a, b, "antisymmetric");
            }
            for &c in &ids {
                if o.subsumes(a, b) && o.subsumes(b, c) {
                    assert!(o.subsumes(a, c), "transitive");
                }
            }
        }
    }
}

#[test]
fn partitions_are_disjoint_under_realization_semantics() {
    // Realization semantics make partitions non-overlapping by definition:
    // every concept appears in the partition list of each ancestor at most
    // once, and partition lists contain no duplicates.
    let o = mygrid::ontology();
    for c in o.iter() {
        let parts = o.partitions_of(c);
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            assert!(
                seen.insert(*p),
                "duplicate partition under {}",
                o.concept_name(c)
            );
            assert!(o.subsumes(c, *p));
            assert!(o.can_be_realized(*p));
        }
    }
}

#[test]
fn generation_examples_always_replay() {
    // Soundness of generated examples: re-invoking the module on an
    // example's inputs reproduces its outputs (modules are deterministic).
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 13);
    let config = GenerationConfig::default();
    for id in universe.available_ids().into_iter().take(40) {
        let module = universe.catalog.get(&id).unwrap();
        let report =
            generate_examples(module.as_ref(), &universe.ontology, &pool, &config).unwrap();
        for example in report.examples.iter() {
            let inputs: Vec<_> = example.inputs.iter().map(|b| b.value.clone()).collect();
            let outputs = module.invoke(&inputs).unwrap();
            let recorded: Vec<_> = example.outputs.iter().map(|b| b.value.clone()).collect();
            assert_eq!(outputs, recorded, "{id}");
        }
    }
}
